module Rng = Mixsyn_util.Rng

type item = {
  item_name : string;
  variants : Cell.t array;
}

type site = {
  variant : int;
  orient : Geom.orientation;
  x : float;
  y : float;
}

type placement = site array

type symmetry = {
  mirror_pairs : (int * int) list;
  self_symmetric : int list;
}

let no_symmetry = { mirror_pairs = []; self_symmetric = [] }

type weights = {
  w_overlap : float;
  w_area : float;
  w_wire : float;
  w_symmetry : float;
}

let default_weights =
  (* scales: areas ~1e-10 m^2, wires ~1e-4 m; normalise to comparable units *)
  { w_overlap = 5e12; w_area = 1e12; w_wire = 3e5; w_symmetry = 3e5 }

let realized_cell item site =
  let cell = Cell.transform site.orient item.variants.(site.variant) in
  Cell.translate site.x site.y cell

let realized items placement =
  Array.to_list (Array.mapi (fun i site -> realized_cell items.(i) site) placement)

let footprint item site =
  let cell = item.variants.(site.variant) in
  let w, h =
    match site.orient with
    | Geom.R90 | Geom.R270 | Geom.MXR90 | Geom.MYR90 -> (cell.Cell.ch, cell.Cell.cw)
    | Geom.R0 | Geom.R180 | Geom.MX | Geom.MY -> (cell.Cell.cw, cell.Cell.ch)
  in
  Geom.rect Geom.Metal1 site.x site.y (site.x +. w) (site.y +. h)

let cost_parts ?(rules = Rules.generic_07um) items sym placement =
  let n = Array.length items in
  let boxes = Array.init n (fun i -> footprint items.(i) placement.(i)) in
  (* overlap with a spacing halo wide enough to leave routing tracks
     between cells (the "wirespace problem" of Section 3.1) *)
  let halo = 1.2 *. rules.Rules.route_pitch in
  let overlap = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      overlap :=
        !overlap +. Geom.intersection_area (Geom.bloat halo boxes.(i)) (Geom.bloat halo boxes.(j))
    done
  done;
  let bb = Option.get (Geom.bbox (Array.to_list boxes)) in
  let bbox_area = Geom.area bb in
  (* wirelength: HPWL per net over realized pin centres *)
  let net_bounds : (string, float * float * float * float) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun i site ->
      let cell = realized_cell items.(i) site in
      List.iter
        (fun (p : Cell.pin) ->
          let x, y = Cell.pin_center p in
          match Hashtbl.find_opt net_bounds p.Cell.pin_net with
          | None -> Hashtbl.replace net_bounds p.Cell.pin_net (x, y, x, y)
          | Some (x0, y0, x1, y1) ->
            Hashtbl.replace net_bounds p.Cell.pin_net
              (Float.min x0 x, Float.min y0 y, Float.max x1 x, Float.max y1 y))
        cell.Cell.pins)
    placement;
  let wirelength =
    Hashtbl.fold (fun _ (x0, y0, x1, y1) acc -> acc +. (x1 -. x0) +. (y1 -. y0)) net_bounds 0.0
  in
  (* symmetry: mirror pairs about the mean axis *)
  let sym_violation = ref 0.0 in
  if sym.mirror_pairs <> [] || sym.self_symmetric <> [] then begin
    let centers =
      List.map
        (fun (i, j) ->
          let xi, _ = Geom.center boxes.(i) and xj, _ = Geom.center boxes.(j) in
          0.5 *. (xi +. xj))
        sym.mirror_pairs
      @ List.map (fun i -> fst (Geom.center boxes.(i))) sym.self_symmetric
    in
    let axis =
      match centers with
      | [] -> 0.0
      | _ -> List.fold_left ( +. ) 0.0 centers /. float_of_int (List.length centers)
    in
    List.iter
      (fun (i, j) ->
        let xi, yi = Geom.center boxes.(i) and xj, yj = Geom.center boxes.(j) in
        sym_violation :=
          !sym_violation +. Float.abs (xi +. xj -. (2.0 *. axis)) +. Float.abs (yi -. yj))
      sym.mirror_pairs;
    List.iter
      (fun i ->
        let xi, _ = Geom.center boxes.(i) in
        sym_violation := !sym_violation +. Float.abs (xi -. axis))
      sym.self_symmetric
  end;
  (!overlap, bbox_area, wirelength, !sym_violation)

let cost ?rules ?(weights = default_weights) items sym placement =
  let overlap, bbox_area, wl, sym_violation = cost_parts ?rules items sym placement in
  (weights.w_overlap *. overlap)
  +. (weights.w_area *. bbox_area)
  +. (weights.w_wire *. wl)
  +. (weights.w_symmetry *. sym_violation)

let wirelength items placement =
  let _, _, wl, _ = cost_parts items no_symmetry placement in
  wl

let overlap_free ?rules:_ items placement =
  (* true geometric overlap, without the routing halo the cost uses *)
  let n = Array.length items in
  let boxes = Array.init n (fun i -> footprint items.(i) placement.(i)) in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Geom.intersection_area boxes.(i) boxes.(j) > 1e-18 then ok := false
    done
  done;
  !ok

let grid = 0.35e-6 (* placement grid: one lambda *)

let snap v = Float.round (v /. grid) *. grid

let place ?(rules = Rules.generic_07um) ?(weights = default_weights) ?schedule ?(seed = 17)
    ?(restarts = 1) ?jobs items sym =
  let n = Array.length items in
  let rng = Rng.create seed in
  (* initial spread: cells side by side with spacing *)
  let initial =
    let x = ref 0.0 in
    Array.init n (fun i ->
        let cell = items.(i).variants.(0) in
        let site = { variant = 0; orient = Geom.R0; x = !x; y = 0.0 } in
        x := !x +. cell.Cell.cw +. (4.0 *. rules.Rules.min_spacing Geom.Ndiff);
        site)
  in
  let span () =
    let boxes = Array.to_list (Array.mapi (fun i s -> footprint items.(i) s) initial) in
    match Geom.bbox boxes with
    | Some bb -> Float.max (Geom.width bb) (Geom.height bb)
    | None -> 1e-5
  in
  let full_span = span () in
  let neighbor rng ~temp01 placement =
    let p = Array.copy placement in
    let i = Rng.int rng n in
    let site = p.(i) in
    let range = full_span *. (0.05 +. (0.5 *. temp01)) in
    let choice = Rng.int rng 10 in
    if choice < 5 then begin
      (* translate *)
      p.(i) <-
        { site with
          x = snap (site.x +. Rng.uniform rng (-.range) range);
          y = snap (site.y +. Rng.uniform rng (-.range) range) }
    end
    else if choice < 7 then begin
      (* reorient *)
      p.(i) <- { site with orient = Rng.choice rng Geom.all_orientations }
    end
    else if choice < 8 && n > 1 then begin
      (* swap positions *)
      let j = (i + 1 + Rng.int rng (n - 1)) mod n in
      let si = p.(i) and sj = p.(j) in
      p.(i) <- { si with x = sj.x; y = sj.y };
      p.(j) <- { sj with x = si.x; y = si.y }
    end
    else begin
      (* change variant (refold) *)
      let variants = Array.length items.(i).variants in
      if variants > 1 then p.(i) <- { site with variant = Rng.int rng variants }
      else
        p.(i) <-
          { site with
            x = snap (site.x +. Rng.uniform rng (-.range) range);
            y = snap (site.y +. Rng.uniform rng (-.range) range) }
    end;
    p
  in
  let initial_cost = cost ~rules ~weights items sym initial in
  let schedule =
    match schedule with
    | Some s -> s
    | None ->
      { Mixsyn_opt.Anneal.t_start = 0.5 *. Float.max initial_cost 1.0;
        t_end = 1e-6 *. Float.max initial_cost 1.0;
        cooling = 0.93;
        moves_per_stage = 60 * n }
  in
  let problem =
    { Mixsyn_opt.Anneal.initial; cost = cost ~rules ~weights items sym; neighbor }
  in
  let outcome = Mixsyn_opt.Anneal.minimize_multistart ~schedule ?jobs ~restarts ~rng problem in
  outcome.Mixsyn_opt.Anneal.best
