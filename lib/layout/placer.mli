(** KOAN-style device placement by simulated annealing ([34,35,36]).

    Items are generated cells (devices, stacks, passives), each with
    alternative geometry variants (fold counts) and free orientation.  The
    annealer explores translation, reorientation, swap, and variant moves —
    the "dynamic folding/reshaping" the paper credits KOAN with — under a
    cost mixing overlap, bounding-box area, net half-perimeter wirelength,
    and symmetry-group violations (matched differential structures must
    mirror about a shared vertical axis). *)

type item = {
  item_name : string;
  variants : Cell.t array;  (** alternative geometries (fold counts) *)
}

type site = {
  variant : int;
  orient : Geom.orientation;
  x : float;
  y : float;
}

type placement = site array

(** Symmetry constraints by item index. *)
type symmetry = {
  mirror_pairs : (int * int) list;  (** must mirror about the common axis *)
  self_symmetric : int list;        (** must sit on the axis *)
}

val no_symmetry : symmetry

type weights = {
  w_overlap : float;
  w_area : float;
  w_wire : float;
  w_symmetry : float;
}

val default_weights : weights

val realized : item array -> placement -> Cell.t list
(** The placed cells (transformed and translated). *)

val cost :
  ?rules:Rules.t -> ?weights:weights -> item array -> symmetry -> placement -> float

val cost_parts :
  ?rules:Rules.t -> item array -> symmetry -> placement ->
  float * float * float * float
(** (overlap area, bbox area, wirelength, symmetry violation) — raw terms. *)

val place :
  ?rules:Rules.t ->
  ?weights:weights ->
  ?schedule:Mixsyn_opt.Anneal.schedule ->
  ?seed:int ->
  ?restarts:int ->
  ?jobs:int ->
  item array ->
  symmetry ->
  placement
(** Anneal from a spread-out initial placement.  With [restarts > 1]
    (default 1) independent chains run concurrently on the
    {!Mixsyn_util.Pool} via {!Mixsyn_opt.Anneal.minimize_multistart}
    and the best placement wins; the result depends only on [seed] and
    [restarts], never on [jobs]. *)

val overlap_free : ?rules:Rules.t -> item array -> placement -> bool
(** True geometric (halo-free) overlap freedom. *)

val wirelength : item array -> placement -> float
(** Total half-perimeter wirelength over all nets. *)
