(** KOAN-style device placement by simulated annealing ([34,35,36]).

    Items are generated cells (devices, stacks, passives), each with
    alternative geometry variants (fold counts) and free orientation.  The
    annealer explores translation, reorientation, swap, and variant moves —
    the "dynamic folding/reshaping" the paper credits KOAN with — under a
    cost mixing overlap, bounding-box area, net half-perimeter wirelength,
    and symmetry-group violations (matched differential structures must
    mirror about a shared vertical axis). *)

type item = {
  item_name : string;
  variants : Cell.t array;  (** alternative geometries (fold counts) *)
}

type site = {
  variant : int;
  orient : Geom.orientation;
  x : float;
  y : float;
}

type placement = site array

(** Symmetry constraints by item index. *)
type symmetry = {
  mirror_pairs : (int * int) list;  (** must mirror about the common axis *)
  self_symmetric : int list;        (** must sit on the axis *)
}

val no_symmetry : symmetry

type weights = {
  w_overlap : float;
  w_area : float;
  w_wire : float;
  w_symmetry : float;
}

val default_weights : weights

val realized : item array -> placement -> Cell.t list
(** The placed cells (transformed and translated). *)

val cost :
  ?rules:Rules.t -> ?weights:weights -> item array -> symmetry -> placement -> float

val cost_parts :
  ?rules:Rules.t -> item array -> symmetry -> placement ->
  float * float * float * float
(** (overlap area, bbox area, wirelength, symmetry violation) — raw terms. *)

(** Incremental cost evaluator — the annealer's hot path.

    An [Eval.t] owns one placement in flat arrays (per-cell footprint and
    halo-bloated boxes, per-net HPWL bounds over precomputed transformed
    pin offsets) and evaluates a tentative move by recomputing only what
    the move touches, in O(cells on the affected nets + n) flops with no
    allocation — instead of the O(n^2) full-geometry rebuild the
    per-placement {!cost_parts} pays.  Every cached quantity is recomputed
    with arithmetic identical to a from-scratch build, so after {e any}
    sequence of moves/commits/reverts the evaluator's state — and hence
    {!Eval.cost_parts} — is bit-equal to a fresh evaluator on the same
    placement.  One evaluator per annealing chain; instances share only
    immutable tables and are never thread-safe individually. *)
module Eval : sig
  type t

  val create :
    ?rules:Rules.t -> ?weights:weights -> item array -> symmetry -> placement -> t
  (** Build tables and state for this placement.
      @raise Invalid_argument on an empty item set or length mismatch. *)

  val cost_parts : t -> float * float * float * float
  (** Raw terms of the current placement, summed in a fixed order
      (overlap row-major over index pairs, nets ascending by id). *)

  val cost : t -> float
  (** The weighted scalar the annealer minimizes. *)

  val set_site : t -> int -> site -> float
  (** Tentatively re-site cell [i]; returns the exact weighted cost delta.
      Must be resolved by {!commit} or {!revert} before the next move.
      @raise Invalid_argument while another move is pending. *)

  val swap_positions : t -> int -> int -> float
  (** Tentatively exchange the positions of two cells (variants and
      orientations stay); returns the weighted delta.
      @raise Invalid_argument while a move is pending or when [i = j]. *)

  val commit : t -> unit
  (** Accept the pending move. *)

  val revert : t -> unit
  (** Undo the pending move exactly (no-op when none is pending). *)

  val remember : t -> unit
  (** Snapshot the current placement (the annealer's best-seen). *)

  val recall : t -> unit
  (** Restore the snapshot, discarding any pending move. *)

  val placement : t -> placement
  (** The current placement, as ordinary sites. *)
end

val place :
  ?rules:Rules.t ->
  ?weights:weights ->
  ?schedule:Mixsyn_opt.Anneal.schedule ->
  ?seed:int ->
  ?restarts:int ->
  ?jobs:int ->
  item array ->
  symmetry ->
  placement
(** Anneal from a spread-out initial placement.  With [restarts > 1]
    (default 1) independent chains run concurrently on the
    {!Mixsyn_util.Pool} via {!Mixsyn_opt.Anneal.minimize_multistart}
    and the best placement wins; the result depends only on [seed] and
    [restarts], never on [jobs]. *)

val overlap_free : ?rules:Rules.t -> item array -> placement -> bool
(** True geometric (halo-free) overlap freedom. *)

val wirelength : item array -> placement -> float
(** Total half-perimeter wirelength over all nets. *)
