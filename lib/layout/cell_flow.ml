module Netlist = Mixsyn_circuit.Netlist

type report = {
  flow_name : string;
  placed : Cell.t list;
  route : Maze_router.result;
  area_m2 : float;
  wirelength_m : float;
  vias : int;
  complete : bool;
  sensitive_coupling_f : float;
  parasitics : Extract.net_parasitics list;
}

let classify_net name =
  match name with
  | "inp" | "inn" | "csa_in" | "d1" | "o1" -> Maze_router.Sensitive
  | "vdd" | "0" | "out" | "clk" -> Maze_router.Noisy
  | _ -> Maze_router.Neutral

let target_finger = 20e-6

let items_of_netlist nl =
  let devices = Netlist.mos_list nl in
  let stacking = Stacker.linear devices in
  let resolve node_str = Netlist.net_name nl (int_of_string node_str) in
  let device_items =
    List.map
      (fun (st : Stacker.stack) ->
        match st.Stacker.devices with
        | [ single ] ->
          (* single device: offer fold variants (KOAN's reshaping moves) *)
          let m = Netlist.find_mos nl single in
          let dn = Netlist.net_name nl m.Netlist.drain in
          let gn = Netlist.net_name nl m.Netlist.gate in
          let sn = Netlist.net_name nl m.Netlist.source in
          let variant folds =
            Generator.mos ~name:single ~polarity:m.Netlist.polarity ~w:m.Netlist.w
              ~l:m.Netlist.l ~folds ~drain_net:dn ~gate_net:gn ~source_net:sn ()
          in
          let base_folds = Generator.choose_folds ~w:m.Netlist.w target_finger in
          let folds_options =
            List.sort_uniq compare [ base_folds; max 1 (base_folds / 2); base_folds * 2 ]
          in
          { Placer.item_name = single;
            variants = Array.of_list (List.map variant folds_options) }
        | _ ->
          let gates = List.map (fun (d, g) -> (d, resolve g)) st.Stacker.gates in
          let nodes = List.map resolve st.Stacker.nodes in
          let cell =
            Generator.stack ~name:st.Stacker.st_name ~polarity:st.Stacker.polarity
              ~w:st.Stacker.st_w ~l:st.Stacker.st_l ~gates ~nodes ()
          in
          { Placer.item_name = st.Stacker.st_name; variants = [| cell |] })
      stacking.Stacker.stacks
  in
  let passive_items =
    List.filter_map
      (function
        | Netlist.Capacitor { c_name; a; b; farads } when farads > 5e-15 ->
          Some
            { Placer.item_name = c_name;
              variants =
                [| Generator.capacitor ~name:c_name ~farads ~net_a:(Netlist.net_name nl a)
                     ~net_b:(Netlist.net_name nl b) () |] }
        | Netlist.Resistor { r_name; a; b; ohms } when ohms > 100.0 ->
          Some
            { Placer.item_name = r_name;
              variants =
                [| Generator.resistor ~name:r_name ~ohms ~net_a:(Netlist.net_name nl a)
                     ~net_b:(Netlist.net_name nl b) () |] }
        | Netlist.Capacitor _ | Netlist.Resistor _ | Netlist.Mos _ | Netlist.Vsource _
        | Netlist.Isource _ | Netlist.Vccs _ -> None)
      (Netlist.elements nl)
  in
  let items = Array.of_list (device_items @ passive_items) in
  (* nets: everything the pins mention except supplies *)
  let net_names = Hashtbl.create 16 in
  Array.iter
    (fun (item : Placer.item) ->
      Array.iter
        (fun (cell : Cell.t) ->
          List.iter
            (fun (p : Cell.pin) -> Hashtbl.replace net_names p.Cell.pin_net ())
            cell.Cell.pins)
        item.Placer.variants)
    items;
  let nets =
    Hashtbl.fold
      (fun name () acc ->
        if name = "vdd" || name = "0" then acc
        else
          { Maze_router.net = name; n_class = classify_net name; coupling_budget = None }
          :: acc)
      net_names []
  in
  (* symmetry groups from the schematic, mapped onto item indices.  A device
     absorbed into a multi-device stack maps to the stack's item, so a
     matched pair split across two stacks still constrains the placer
     (previously such pairs were silently dropped).  Devices in one shared
     stack are matched by construction and need no constraint. *)
  let stack_index = Hashtbl.create 16 in
  List.iteri
    (fun i (st : Stacker.stack) ->
      List.iter (fun d -> Hashtbl.replace stack_index d i) st.Stacker.devices)
    stacking.Stacker.stacks;
  let item_of_device d = Hashtbl.find_opt stack_index d in
  let mirror_pairs =
    List.filter_map
      (fun (a, b) ->
        match (item_of_device a, item_of_device b) with
        | Some i, Some j when i <> j -> Some (i, j)
        | Some _, Some _ | Some _, None | None, Some _ | None, None -> None)
      (Sensitivity.matching_pairs nl)
  in
  (items, nets, { Placer.mirror_pairs; self_symmetric = [] })

let tagged_geometry (r : report) =
  List.concat_map
    (fun (c : Cell.t) -> List.map (fun rect -> (c.Cell.cell_name, rect)) c.Cell.rects)
    r.placed
  @ List.concat_map
      (fun (w : Maze_router.wire) ->
        List.map (fun rect -> ("net:" ^ w.Maze_router.w_net, rect)) w.Maze_router.rects)
      r.route.Maze_router.wires

let finish ~flow_name ~items ~placement ~nets ~symmetric_pairs =
  let placed = Placer.realized items placement in
  let route = Maze_router.route ~symmetric_pairs ~cells:placed ~nets () in
  let everything =
    List.concat_map (fun (c : Cell.t) -> c.Cell.rects) placed
    @ List.concat_map (fun (w : Maze_router.wire) -> w.Maze_router.rects) route.Maze_router.wires
  in
  let area = match Geom.bbox everything with Some bb -> Geom.area bb | None -> 0.0 in
  let parasitics =
    Extract.of_layout ~wires:route.Maze_router.wires ~coupling:route.Maze_router.coupling ()
  in
  let sensitive_coupling =
    List.fold_left
      (fun acc (spec : Maze_router.net_spec) ->
        if spec.Maze_router.n_class = Maze_router.Sensitive then
          acc +. Maze_router.coupling_on route spec.Maze_router.net
        else acc)
      0.0 nets
  in
  { flow_name;
    placed;
    route;
    area_m2 = area;
    wirelength_m = route.Maze_router.total_length;
    vias = route.Maze_router.total_vias;
    complete = route.Maze_router.failed = [];
    sensitive_coupling_f = sensitive_coupling;
    parasitics }

let symmetric_net_pairs nets =
  (* differential input nets route as a mirrored pair when both exist *)
  let names = List.map (fun (s : Maze_router.net_spec) -> s.Maze_router.net) nets in
  if List.mem "inp" names && List.mem "inn" names then [ ("inp", "inn") ] else []

let max_placement_attempts = 4

let koan ?(seed = 23) ?(coupling_budgets = []) ?restarts ?jobs nl =
  Mixsyn_util.Telemetry.with_span "layout.koan" @@ fun () ->
  let items, nets, symmetry = items_of_netlist nl in
  let nets =
    List.map
      (fun (spec : Maze_router.net_spec) ->
        match List.assoc_opt spec.Maze_router.net coupling_budgets with
        | Some budget -> { spec with Maze_router.coupling_budget = Some budget }
        | None -> spec)
      nets
  in
  (* routability is a property of the placement: when the router cannot
     complete, try further annealing seeds and keep the best attempt *)
  let attempt k =
    Mixsyn_util.Telemetry.count "layout.placement_attempts";
    let placement =
      Mixsyn_util.Telemetry.with_span "layout.place" (fun () ->
          Placer.place ~seed:(seed + (1000 * k)) ?restarts ~jobs:1 items symmetry)
    in
    Mixsyn_util.Telemetry.with_span "layout.route" (fun () ->
        finish ~flow_name:(Printf.sprintf "koan-seed%d" seed) ~items ~placement ~nets
          ~symmetric_pairs:(symmetric_net_pairs nets))
  in
  (* the pick rule — first complete attempt in seed order, otherwise the
     fewest failed nets with ties to the earliest seed — makes the eager
     parallel evaluation below return exactly what the lazy early-exit
     loop would, so the report never depends on [jobs] *)
  let pick reports =
    match Array.find_opt (fun r -> r.complete) reports with
    | Some r -> r
    | None ->
      Array.fold_left
        (fun best r ->
          if List.length best.route.Maze_router.failed
             <= List.length r.route.Maze_router.failed
          then best
          else r)
        reports.(0)
        (Array.sub reports 1 (Array.length reports - 1))
  in
  if Mixsyn_util.Pool.effective_jobs jobs max_placement_attempts > 1 then
    pick (Mixsyn_util.Pool.parallel_init ?jobs max_placement_attempts attempt)
  else begin
    let rec search k best =
      if k >= max_placement_attempts then best
      else begin
        let r = attempt k in
        if r.complete then r
        else
          search (k + 1)
            (if List.length best.route.Maze_router.failed
                <= List.length r.route.Maze_router.failed
             then best
             else r)
      end
    in
    let first = attempt 0 in
    if first.complete then first else search 1 first
  end

let procedural ?(style = 0) nl =
  let items, nets, _symmetry = items_of_netlist nl in
  let n = Array.length items in
  let is_pmos (item : Placer.item) =
    let cell = item.Placer.variants.(0) in
    List.exists (fun r -> r.Geom.layer = Geom.Pdiff) cell.Cell.rects
  in
  let is_passive (item : Placer.item) =
    let cell = item.Placer.variants.(0) in
    not (List.exists (fun r -> r.Geom.layer = Geom.Pdiff || r.Geom.layer = Geom.Ndiff) cell.Cell.rects)
  in
  let spacing = 6e-6 in
  let place_row items_in_row y =
    let x = ref 0.0 in
    List.map
      (fun (i, item : int * Placer.item) ->
        let cell = item.Placer.variants.(0) in
        let site = { Placer.variant = 0; orient = Geom.R0; x = !x; y } in
        x := !x +. cell.Cell.cw +. spacing;
        (i, site))
      items_in_row
  in
  let indexed = List.init n (fun i -> (i, items.(i))) in
  let pmos_row = List.filter (fun (_, it) -> is_pmos it) indexed in
  let passives = List.filter (fun (_, it) -> is_passive it && not (is_pmos it)) indexed in
  let nmos_row =
    List.filter (fun (_, it) -> (not (is_pmos it)) && not (is_passive it)) indexed
  in
  let arrangement =
    match style mod 4 with
    | 0 ->
      (* classic: P row above N row, passives to the right at mid height *)
      place_row pmos_row 60e-6 @ place_row nmos_row 0.0
      @ place_row (List.map (fun (i, it) -> (i, it)) passives) 120e-6
    | 1 ->
      (* single row *)
      place_row indexed 0.0
    | 2 ->
      (* reversed device order, passives first *)
      place_row (List.rev pmos_row) 60e-6 @ place_row (List.rev nmos_row) 0.0
      @ place_row passives 120e-6
    | _ ->
      (* tall: one device per row *)
      List.mapi
        (fun k (i, _) ->
          (i, { Placer.variant = 0; orient = Geom.R0; x = 0.0; y = float_of_int k *. 45e-6 }))
        indexed
  in
  let placement =
    let sites = Array.make n { Placer.variant = 0; orient = Geom.R0; x = 0.0; y = 0.0 } in
    List.iter (fun (i, site) -> sites.(i) <- site) arrangement;
    sites
  in
  finish ~flow_name:(Printf.sprintf "procedural-style%d" style) ~items ~placement ~nets
    ~symmetric_pairs:[]
