type net = int

type polarity = Nmos | Pmos

type mos = {
  m_name : string;
  drain : net;
  gate : net;
  source : net;
  bulk : net;
  w : float;
  l : float;
  polarity : polarity;
}

type wave =
  | Dc_wave
  | Pulse of { v0 : float; v1 : float; delay : float; rise : float; width : float }
  | Sine of { offset : float; ampl : float; freq : float }
  | Pwl of (float * float) list

type element =
  | Mos of mos
  | Resistor of { r_name : string; a : net; b : net; ohms : float }
  | Capacitor of { c_name : string; a : net; b : net; farads : float }
  | Vsource of { v_name : string; p : net; n : net; dc : float; ac : float; v_wave : wave }
  | Isource of { i_name : string; p : net; n : net; dc : float; ac : float; i_wave : wave }
  | Vccs of { g_name : string; p : net; n : net; cp : net; cn : net; gm : float }

type t = {
  mutable rev_elements : element list;
  mutable count : int;
  mutable n_nets : int;
  by_name : (string, net) Hashtbl.t;
  mutable names : string array;
}

let gnd = 0

let create () =
  let t =
    { rev_elements = []; count = 0; n_nets = 1;
      by_name = Hashtbl.create 64; names = Array.make 16 "" }
  in
  t.names.(0) <- "0";
  Hashtbl.replace t.by_name "0" 0;
  t

let ensure_capacity t n =
  if n >= Array.length t.names then begin
    let bigger = Array.make (max (2 * Array.length t.names) (n + 1)) "" in
    Array.blit t.names 0 bigger 0 (Array.length t.names);
    t.names <- bigger
  end

let new_net ?name t =
  let id = t.n_nets in
  t.n_nets <- id + 1;
  ensure_capacity t id;
  let label = match name with Some s -> s | None -> Printf.sprintf "n%d" id in
  t.names.(id) <- label;
  Hashtbl.replace t.by_name label id;
  id

let find_net t name = Hashtbl.find t.by_name name

let net_name t n = if n < t.n_nets then t.names.(n) else Printf.sprintf "?%d" n

let net_count t = t.n_nets

let add t e =
  t.rev_elements <- e :: t.rev_elements;
  t.count <- t.count + 1

let elements t = List.rev t.rev_elements

let element_name = function
  | Mos m -> m.m_name
  | Resistor r -> r.r_name
  | Capacitor c -> c.c_name
  | Vsource v -> v.v_name
  | Isource i -> i.i_name
  | Vccs g -> g.g_name

let find_mos t name =
  let rec search = function
    | [] -> raise Not_found
    | Mos m :: _ when m.m_name = name -> m
    | _ :: rest -> search rest
  in
  search t.rev_elements

let mos_list t =
  List.filter_map (function Mos m -> Some m | Resistor _ | Capacitor _ | Vsource _ | Isource _ | Vccs _ -> None)
    (elements t)

let device_count t = t.count

let wave_value w ~dc time =
  match w with
  | Dc_wave -> dc
  | Pulse { v0; v1; delay; rise; width } ->
    if time < delay then v0
    else if time < delay +. rise then
      v0 +. ((v1 -. v0) *. (time -. delay) /. rise)
    else if time < delay +. rise +. width then v1
    else if time < delay +. (2.0 *. rise) +. width then
      v1 -. ((v1 -. v0) *. (time -. delay -. rise -. width) /. rise)
    else v0
  | Sine { offset; ampl; freq } -> offset +. (ampl *. sin (2.0 *. Float.pi *. freq *. time))
  | Pwl pts ->
    let rec interp last = function
      | [] -> snd last
      | (tp, vp) :: rest ->
        if time < tp then begin
          let t0, v0 = last in
          if tp = t0 then vp else v0 +. ((vp -. v0) *. (time -. t0) /. (tp -. t0))
        end
        else interp (tp, vp) rest
    in
    (match pts with
     | [] -> dc
     | (t0, v0) :: _ -> if time <= t0 then v0 else interp (t0, v0) pts)

let pp ppf t =
  let net ppf n = Format.fprintf ppf "%s" (net_name t n) in
  let each = function
    | Mos m ->
      Format.fprintf ppf "M%s %a %a %a %a %s W=%g L=%g@\n" m.m_name net m.drain net m.gate
        net m.source net m.bulk
        (match m.polarity with Nmos -> "nmos" | Pmos -> "pmos")
        m.w m.l
    | Resistor r -> Format.fprintf ppf "R%s %a %a %g@\n" r.r_name net r.a net r.b r.ohms
    | Capacitor c -> Format.fprintf ppf "C%s %a %a %g@\n" c.c_name net c.a net c.b c.farads
    | Vsource v -> Format.fprintf ppf "V%s %a %a DC %g AC %g@\n" v.v_name net v.p net v.n v.dc v.ac
    | Isource i -> Format.fprintf ppf "I%s %a %a DC %g AC %g@\n" i.i_name net i.p net i.n i.dc i.ac
    | Vccs g -> Format.fprintf ppf "G%s %a %a %a %a %g@\n" g.g_name net g.p net g.n net g.cp net g.cn g.gm
  in
  List.iter each (elements t)

let copy t =
  { rev_elements = t.rev_elements;
    count = t.count;
    n_nets = t.n_nets;
    by_name = Hashtbl.copy t.by_name;
    names = Array.copy t.names }

let to_spice ?(title = "mixsyn netlist") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("* " ^ title ^ "\n");
  let net n = net_name t n in
  let each = function
    | Mos m ->
      Buffer.add_string buf
        (Printf.sprintf "M%s %s %s %s %s %s W=%g L=%g\n" m.m_name (net m.drain) (net m.gate)
           (net m.source) (net m.bulk)
           (match m.polarity with Nmos -> "NMOS" | Pmos -> "PMOS")
           m.w m.l)
    | Resistor r ->
      Buffer.add_string buf (Printf.sprintf "R%s %s %s %g\n" r.r_name (net r.a) (net r.b) r.ohms)
    | Capacitor c ->
      Buffer.add_string buf (Printf.sprintf "C%s %s %s %g\n" c.c_name (net c.a) (net c.b) c.farads)
    | Vsource v ->
      Buffer.add_string buf
        (Printf.sprintf "V%s %s %s DC %g AC %g\n" v.v_name (net v.p) (net v.n) v.dc v.ac)
    | Isource i ->
      Buffer.add_string buf
        (Printf.sprintf "I%s %s %s DC %g AC %g\n" i.i_name (net i.p) (net i.n) i.dc i.ac)
    | Vccs g ->
      Buffer.add_string buf
        (Printf.sprintf "G%s %s %s %s %s %g\n" g.g_name (net g.p) (net g.n) (net g.cp)
           (net g.cn) g.gm)
  in
  List.iter each (elements t);
  Buffer.add_string buf ".END\n";
  Buffer.contents buf

let map_elements t f =
  { (copy t) with rev_elements = List.rev_map f (elements t) }

let element_nets = function
  | Mos m -> [ m.drain; m.gate; m.source; m.bulk ]
  | Resistor r -> [ r.a; r.b ]
  | Capacitor c -> [ c.a; c.b ]
  | Vsource v -> [ v.p; v.n ]
  | Isource i -> [ i.p; i.n ]
  | Vccs g -> [ g.p; g.n; g.cp; g.cn ]

let validate t =
  let problems = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let name = element_name e in
      (match Hashtbl.find_opt seen name with
       | Some n -> Hashtbl.replace seen name (n + 1)
       | None -> Hashtbl.replace seen name 1);
      List.iter
        (fun n ->
          if n < 0 || n >= t.n_nets then
            problems :=
              Printf.sprintf "bad-net-id: element %s references net %d outside [0, %d)"
                name n t.n_nets
              :: !problems)
        (element_nets e))
    (elements t);
  Hashtbl.iter
    (fun name n ->
      if n > 1 then
        problems := Printf.sprintf "duplicate-name: %s used by %d elements" name n :: !problems)
    seen;
  List.sort compare !problems
