(** Circuit database: nets and elements.

    This is the common substrate of the whole flow — the frontend sizes the
    elements of a netlist, the simulator stamps them, the backend lays them
    out.  All values are SI units (meters, ohms, farads, volts, amperes).

    Net [gnd] (index 0) is the global reference. *)

type net = int

type polarity = Nmos | Pmos

type mos = {
  m_name : string;
  drain : net;
  gate : net;
  source : net;
  bulk : net;
  w : float;  (** channel width, m *)
  l : float;  (** channel length, m *)
  polarity : polarity;
}

(** Time-domain behaviour of an independent source. *)
type wave =
  | Dc_wave
  | Pulse of { v0 : float; v1 : float; delay : float; rise : float; width : float }
  | Sine of { offset : float; ampl : float; freq : float }
  | Pwl of (float * float) list  (** (time, value) breakpoints, sorted *)

type element =
  | Mos of mos
  | Resistor of { r_name : string; a : net; b : net; ohms : float }
  | Capacitor of { c_name : string; a : net; b : net; farads : float }
  | Vsource of { v_name : string; p : net; n : net; dc : float; ac : float; v_wave : wave }
  | Isource of { i_name : string; p : net; n : net; dc : float; ac : float; i_wave : wave }
      (** positive [dc] pushes current from [p] to [n] through the source,
          i.e. out of node [n] into node [p] externally. *)
  | Vccs of { g_name : string; p : net; n : net; cp : net; cn : net; gm : float }
      (** current [gm * v(cp,cn)] flows from [p] to [n] inside the element. *)

type t

val create : unit -> t
val gnd : net

val new_net : ?name:string -> t -> net
val find_net : t -> string -> net
(** @raise Not_found when no net has that name. *)

val net_name : t -> net -> string
val net_count : t -> int
(** Number of nets including ground. *)

val add : t -> element -> unit
val elements : t -> element list
(** In insertion order. *)

val element_name : element -> string
val find_mos : t -> string -> mos
(** @raise Not_found *)

val mos_list : t -> mos list
val device_count : t -> int

val wave_value : wave -> dc:float -> float -> float
(** [wave_value w ~dc t] evaluates a source's value at time [t]; [Dc_wave]
    holds at [dc]. *)

val pp : Format.formatter -> t -> unit
(** SPICE-flavoured listing, for debugging and documentation. *)

val copy : t -> t
(** Independent copy: adding elements to the copy leaves the original
    unchanged. *)

val to_spice : ?title:string -> t -> string
(** SPICE-deck rendering of the netlist (devices, sources, .END) for
    interchange with external simulators. *)

val map_elements : t -> (element -> element) -> t
(** A copy with every element transformed (nets and names preserved). *)

val element_nets : element -> net list
(** Every net an element's terminals reference, in terminal order. *)

val validate : t -> string list
(** Structural smoke check, sorted: one ["duplicate-name: ..."] message per
    element name used more than once and one ["bad-net-id: ..."] message per
    terminal referencing a net outside [0, net_count).  [[]] means the
    netlist is structurally sound; {!Mixsyn_check.Erc} builds on this. *)
