module Netlist = Mixsyn_circuit.Netlist
module Fmat = Mixsyn_util.Fmat

exception No_convergence of string

(* Assemble the Newton-linearised MNA system A x_new = b around the current
   guess [x], stamping straight into the reusable flat workspace [ws].
   Independent sources are scaled by [alpha] for continuation. *)
let assemble tech nl (layout : Mna.layout) ws x ~alpha ~gmin =
  Fmat.Real.clear ws;
  let v net = if net = Netlist.gnd then 0.0 else x.(Mna.node_index net) in
  let evals = ref [] in
  let branch = ref (layout.Mna.nets - 1) in
  let stamp = Fmat.Real.stamp ws and rhs = Fmat.Real.rhs ws in
  let each = function
    | Netlist.Resistor { a = na; b = nb; ohms; _ } ->
      let g = 1.0 /. ohms in
      let ia = Mna.node_index na and ib = Mna.node_index nb in
      stamp ia ia g;
      stamp ib ib g;
      stamp ia ib (-.g);
      stamp ib ia (-.g)
    | Netlist.Capacitor _ -> ()
    | Netlist.Vccs { p; n = nn; cp; cn; gm; _ } ->
      let ip = Mna.node_index p and inn = Mna.node_index nn in
      let icp = Mna.node_index cp and icn = Mna.node_index cn in
      stamp ip icp gm;
      stamp ip icn (-.gm);
      stamp inn icp (-.gm);
      stamp inn icn gm
    | Netlist.Isource { p; n = nn; dc; _ } ->
      (* positive dc injects current into node p *)
      rhs (Mna.node_index p) (alpha *. dc);
      rhs (Mna.node_index nn) (-.(alpha *. dc))
    | Netlist.Vsource { p; n = nn; dc; _ } ->
      let row = !branch in
      incr branch;
      let ip = Mna.node_index p and inn = Mna.node_index nn in
      stamp ip row 1.0;
      stamp inn row (-1.0);
      stamp row ip 1.0;
      stamp row inn (-1.0);
      rhs row (alpha *. dc)
    | Netlist.Mos m ->
      let e =
        Mos_model.evaluate tech m ~vd:(v m.Netlist.drain) ~vg:(v m.Netlist.gate)
          ~vs:(v m.Netlist.source) ~vb:(v m.Netlist.bulk)
      in
      evals := (m, e) :: !evals;
      let id = Mna.node_index m.Netlist.drain
      and ig = Mna.node_index m.Netlist.gate
      and is = Mna.node_index m.Netlist.source
      and ib = Mna.node_index m.Netlist.bulk in
      let open Mos_model in
      stamp id id e.did_dvd;
      stamp id ig e.did_dvg;
      stamp id is e.did_dvs;
      stamp id ib e.did_dvb;
      stamp is id (-.e.did_dvd);
      stamp is ig (-.e.did_dvg);
      stamp is is (-.e.did_dvs);
      stamp is ib (-.e.did_dvb);
      (* residual correction: i_lin = ids + J.(v_new - v0), so the constant
         part (ids minus J.v at the expansion point) moves to the RHS *)
      let linear_at_op =
        (e.did_dvd *. v m.Netlist.drain)
        +. (e.did_dvg *. v m.Netlist.gate)
        +. (e.did_dvs *. v m.Netlist.source)
        +. (e.did_dvb *. v m.Netlist.bulk)
      in
      let const = e.ids -. linear_at_op in
      rhs id (-.const);
      rhs is const
  in
  List.iter each (Netlist.elements nl);
  (* gmin from every node to ground keeps floating gates solvable *)
  for i = 0 to layout.Mna.nets - 2 do
    stamp i i gmin
  done;
  List.rev !evals

let newton tech nl layout ws ~x0 ~alpha ~gmin ~max_iterations =
  let x = Array.copy x0 in
  let n = layout.Mna.size in
  let x_new = Array.make n 0.0 in
  let iterations_run = ref 0 in
  let rec loop iter =
    incr iterations_run;
    if iter > max_iterations then None
    else begin
      let evals = assemble tech nl layout ws x ~alpha ~gmin in
      match
        Fmat.Real.factor ws;
        Fmat.Real.solve ws x_new
      with
      | exception Fmat.Singular _ -> None
      | () ->
        let max_delta = ref 0.0 in
        for i = 0 to n - 1 do
          max_delta := Float.max !max_delta (Float.abs (x_new.(i) -. x.(i)))
        done;
        (* damp: cap voltage updates at 0.5 V to avoid square-law overshoot *)
        let limit = 0.5 in
        let scale = if !max_delta > limit then limit /. !max_delta else 1.0 in
        for i = 0 to n - 1 do
          x.(i) <- x.(i) +. (scale *. (x_new.(i) -. x.(i)))
        done;
        if !max_delta < 1e-9 then Some (x, evals, iter)
        else loop (iter + 1)
    end
  in
  let r = loop 1 in
  Mixsyn_util.Telemetry.add "dc.newton_iterations" !iterations_run;
  (match r with None -> Mixsyn_util.Telemetry.count "dc.newton_failures" | Some _ -> ());
  r

let solve ?(tech = Mixsyn_circuit.Tech.generic_07um) ?(gmin = 1e-9) ?(max_iterations = 200) nl =
  Mixsyn_util.Telemetry.count "dc.solves";
  let layout = Mna.layout_of nl in
  (* one flat workspace from this domain's pool serves every Newton
     iteration and every continuation step of this solve *)
  Fmat.with_real layout.Mna.size @@ fun ws ->
  let newton = newton tech nl layout ws in
  let zeros = Array.make layout.Mna.size 0.0 in
  let finish (x, evals, iterations) = { Mna.op_layout = layout; x; mos_evals = evals; iterations } in
  match newton ~x0:zeros ~alpha:1.0 ~gmin ~max_iterations with
  | Some result -> finish result
  | None ->
    (* source stepping with warm starts *)
    Mixsyn_util.Telemetry.count "dc.source_stepping_runs";
    let steps = [ 0.1; 0.25; 0.4; 0.55; 0.7; 0.85; 1.0 ] in
    let rec continue x0 = function
      | [] -> None
      | alpha :: rest ->
        (match newton ~x0 ~alpha ~gmin ~max_iterations with
         | Some (x, evals, it) ->
           if rest = [] then Some (x, evals, it) else continue x rest
         | None -> None)
    in
    (match continue zeros steps with
     | Some result -> finish result
     | None ->
       (* gmin stepping as a last resort *)
       Mixsyn_util.Telemetry.count "dc.gmin_stepping_runs";
       let rec gmin_steps x0 = function
         | [] -> None
         | g :: rest ->
           (match newton ~x0 ~alpha:1.0 ~gmin:g ~max_iterations with
            | Some (x, evals, it) ->
              if rest = [] then Some (x, evals, it) else gmin_steps x rest
            | None -> None)
       in
       (match gmin_steps zeros [ 1e-3; 1e-5; 1e-7; gmin ] with
        | Some result -> finish result
        | None ->
          Mixsyn_util.Telemetry.count "dc.no_convergence";
          raise (No_convergence "dc: newton, source and gmin stepping all failed")))

let power nl op =
  let layout = op.Mna.op_layout in
  let total = ref 0.0 in
  let v net = Mna.voltage op net in
  let each = function
    | Netlist.Vsource { v_name; dc; _ } ->
      (* branch current flows into the + terminal; delivered power = -dc*i *)
      let i = Mna.branch_current op ~layout v_name in
      total := !total +. (-.dc *. i)
    | Netlist.Isource { p; n; dc; _ } ->
      (* source pushes dc into p: delivered power = dc * (v_p - v_n) *)
      total := !total +. (dc *. (v p -. v n))
    | Netlist.Mos _ | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Vccs _ -> ()
  in
  List.iter each (Netlist.elements nl);
  !total


let sweep ?(tech = Mixsyn_circuit.Tech.generic_07um) nl ~source ~values =
  (* verify the source exists up front *)
  let exists =
    List.exists
      (function
        | Netlist.Vsource { v_name; _ } -> v_name = source
        | Netlist.Mos _ | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Isource _
        | Netlist.Vccs _ -> false)
      (Netlist.elements nl)
  in
  if not exists then raise Not_found;
  Array.map
    (fun v ->
      let nl' =
        Netlist.map_elements nl (function
          | Netlist.Vsource { v_name; p; n; dc = _; ac; v_wave } when v_name = source ->
            Netlist.Vsource { v_name; p; n; dc = v; ac; v_wave }
          | e -> e)
      in
      (v, solve ~tech nl'))
    values
