(** Small-signal noise analysis by the adjoint method.

    One transposed solve per frequency yields the transfer function from
    every internal noise-current injection point to the designated output,
    so the cost is independent of the number of noise sources.  Sources
    modelled: resistor thermal noise, MOS channel thermal noise and MOS
    flicker noise. *)

type contribution = {
  source_name : string;
  kind : [ `Thermal | `Flicker ];
  psd : float;  (** contribution to the output noise PSD, V²/Hz *)
}

type point = {
  freq : float;
  total_psd : float;  (** output noise PSD, V²/Hz *)
  contributions : contribution list;
}

type result = {
  points : point array;
  integrated_rms : float;  (** sqrt of the PSD integrated over the sweep, V *)
}

val analyze :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?jobs:int ->
  ?chunk:int ->
  Mixsyn_circuit.Netlist.t ->
  Mna.op ->
  out:Mixsyn_circuit.Netlist.net ->
  freqs:float array ->
  result
(** Frequency points evaluate concurrently on the {!Mixsyn_util.Pool}
    ([jobs] defaults to [Pool.default_jobs ()]), each an in-place adjoint
    factor/solve in a per-domain {!Mixsyn_util.Fmat} workspace against the
    once-flattened [G]/[C] planes; workers claim contiguous frequency
    bands of [chunk] points.  [points] is in frequency order regardless of
    [jobs] and [chunk]. *)

val integrate : (float * float) array -> float
(** Trapezoidal integration of a (frequency, PSD) series; returns the
    integral (not its square root). *)
