(** Modified nodal analysis bookkeeping shared by all analyses.

    The unknown vector is [node voltages (ground excluded)] followed by one
    branch current per voltage source, in element order.  A branch current is
    measured flowing into the positive terminal of its source (SPICE
    convention: negative when the source delivers power). *)

type layout = {
  nets : int;                  (** net count including ground *)
  branch_names : string array; (** voltage-source names in element order *)
  branch_tbl : (string, int) Hashtbl.t;
      (** name -> absolute unknown index; first occurrence on duplicates.
          Read-only after {!layout_of}. *)
  size : int;                  (** system dimension *)
}

val layout_of : Mixsyn_circuit.Netlist.t -> layout

val node_index : Mixsyn_circuit.Netlist.net -> int
(** Row/column of a net; -1 denotes ground (not part of the system). *)

val branch_index : layout -> string -> int
(** Absolute index of a voltage source's current unknown — O(1) via the
    precomputed [branch_tbl].
    @raise Not_found *)

(** A converged DC operating point. *)
type op = {
  op_layout : layout;
  x : float array;                              (** solution vector *)
  mos_evals : (Mixsyn_circuit.Netlist.mos * Mos_model.eval) list;
  iterations : int;
}

val voltage : op -> Mixsyn_circuit.Netlist.net -> float
val branch_current : op -> layout:layout -> string -> float

val stamp_real : float array array -> int -> int -> float -> unit
(** [stamp_real a i j v] adds [v] at (i,j), ignoring ground (-1) indices. *)

val rhs_real : float array -> int -> float -> unit

val stamp_cplx : Complex.t array array -> int -> int -> Complex.t -> unit
val rhs_cplx : Complex.t array -> int -> Complex.t -> unit

val linear_capacitors :
  Mixsyn_circuit.Tech.t -> Mixsyn_circuit.Netlist.t -> op ->
  (int * int * float) list
(** Every capacitance in the circuit as (net_a, net_b, farads): explicit
    capacitors plus MOS small-signal capacitances at the operating point. *)
