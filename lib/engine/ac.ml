module Netlist = Mixsyn_circuit.Netlist
module Cplx = Mixsyn_util.Matrix.Cplx

type result = {
  freqs : float array;
  solutions : Complex.t array array;
  ac_layout : Mna.layout;
}

let build_system tech nl op =
  let layout = op.Mna.op_layout in
  let n = layout.Mna.size in
  let g = Array.make_matrix n n 0.0 in
  let c = Array.make_matrix n n 0.0 in
  let b = Array.make n Complex.zero in
  let stamp_g i j v = if i >= 0 && j >= 0 then g.(i).(j) <- g.(i).(j) +. v in
  let stamp_c i j v = if i >= 0 && j >= 0 then c.(i).(j) <- c.(i).(j) +. v in
  let branch = ref (layout.Mna.nets - 1) in
  let each = function
    | Netlist.Resistor { a = na; b = nb; ohms; _ } ->
      let gv = 1.0 /. ohms in
      let ia = Mna.node_index na and ib = Mna.node_index nb in
      stamp_g ia ia gv;
      stamp_g ib ib gv;
      stamp_g ia ib (-.gv);
      stamp_g ib ia (-.gv)
    | Netlist.Capacitor _ -> ()
      (* stamped below together with the MOS capacitances *)
    | Netlist.Vccs { p; n = nn; cp; cn; gm; _ } ->
      let ip = Mna.node_index p and inn = Mna.node_index nn in
      let icp = Mna.node_index cp and icn = Mna.node_index cn in
      stamp_g ip icp gm;
      stamp_g ip icn (-.gm);
      stamp_g inn icp (-.gm);
      stamp_g inn icn gm
    | Netlist.Isource { p; n = nn; ac; _ } ->
      if ac <> 0.0 then begin
        let ip = Mna.node_index p and inn = Mna.node_index nn in
        if ip >= 0 then b.(ip) <- Complex.add b.(ip) { Complex.re = ac; im = 0.0 };
        if inn >= 0 then b.(inn) <- Complex.sub b.(inn) { Complex.re = ac; im = 0.0 }
      end
    | Netlist.Vsource { ac; p; n = nn; _ } ->
      let row = !branch in
      incr branch;
      let ip = Mna.node_index p and inn = Mna.node_index nn in
      stamp_g ip row 1.0;
      stamp_g inn row (-1.0);
      stamp_g row ip 1.0;
      stamp_g row inn (-1.0);
      if ac <> 0.0 then b.(row) <- { Complex.re = ac; im = 0.0 }
    | Netlist.Mos _ -> ()
  in
  List.iter each (Netlist.elements nl);
  (* MOS small-signal conductances from the operating point *)
  List.iter
    (fun (m, (e : Mos_model.eval)) ->
      let id = Mna.node_index m.Netlist.drain
      and ig = Mna.node_index m.Netlist.gate
      and is = Mna.node_index m.Netlist.source
      and ib = Mna.node_index m.Netlist.bulk in
      stamp_g id id e.Mos_model.did_dvd;
      stamp_g id ig e.Mos_model.did_dvg;
      stamp_g id is e.Mos_model.did_dvs;
      stamp_g id ib e.Mos_model.did_dvb;
      stamp_g is id (-.e.Mos_model.did_dvd);
      stamp_g is ig (-.e.Mos_model.did_dvg);
      stamp_g is is (-.e.Mos_model.did_dvs);
      stamp_g is ib (-.e.Mos_model.did_dvb))
    op.Mna.mos_evals;
  (* all capacitances, explicit and MOS *)
  List.iter
    (fun (na, nb, farads) ->
      let ia = Mna.node_index na and ib = Mna.node_index nb in
      stamp_c ia ia farads;
      stamp_c ib ib farads;
      stamp_c ia ib (-.farads);
      stamp_c ib ia (-.farads))
    (List.filter (fun (a, b, f) -> a <> b && f > 0.0) (Mna.linear_capacitors tech nl op));
  (g, c, b)

let complex_system g c b omega =
  let n = Array.length b in
  let a = Array.make_matrix n n Complex.zero in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      a.(i).(j) <- { Complex.re = g.(i).(j); im = omega *. c.(i).(j) }
    done
  done;
  a

let solve ?(tech = Mixsyn_circuit.Tech.generic_07um) ?jobs nl op ~freqs =
  Mixsyn_util.Telemetry.count "ac.solves";
  Mixsyn_util.Telemetry.add "ac.freq_points" (Array.length freqs);
  let g, c, b = build_system tech nl op in
  (* each frequency point is an independent solve against the shared
     read-only (g, c, b); results land in frequency order *)
  let solutions =
    Mixsyn_util.Pool.parallel_map ?jobs
      (fun f ->
        let omega = 2.0 *. Float.pi *. f in
        Cplx.solve (complex_system g c b omega) b)
      freqs
  in
  { freqs; solutions; ac_layout = op.Mna.op_layout }

let voltage r k net =
  if net = Netlist.gnd then Complex.zero else r.solutions.(k).(Mna.node_index net)

let magnitude r k net = Complex.norm (voltage r k net)

let phase_deg r k net = Complex.arg (voltage r k net) *. 180.0 /. Float.pi

let log_sweep ~decades_from ~decades_to ~points_per_decade =
  let n = int_of_float ((decades_to -. decades_from) *. float_of_int points_per_decade) + 1 in
  Array.init n (fun i ->
      10.0 ** (decades_from +. (float_of_int i /. float_of_int points_per_decade)))
