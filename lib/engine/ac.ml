module Netlist = Mixsyn_circuit.Netlist
module Fmat = Mixsyn_util.Fmat

type result = {
  freqs : float array;
  solutions : Complex.t array array;
  ac_layout : Mna.layout;
}

let build_system tech nl op =
  let layout = op.Mna.op_layout in
  let n = layout.Mna.size in
  let g = Array.make_matrix n n 0.0 in
  let c = Array.make_matrix n n 0.0 in
  let b = Array.make n Complex.zero in
  let stamp_g i j v = if i >= 0 && j >= 0 then g.(i).(j) <- g.(i).(j) +. v in
  let stamp_c i j v = if i >= 0 && j >= 0 then c.(i).(j) <- c.(i).(j) +. v in
  let branch = ref (layout.Mna.nets - 1) in
  let each = function
    | Netlist.Resistor { a = na; b = nb; ohms; _ } ->
      let gv = 1.0 /. ohms in
      let ia = Mna.node_index na and ib = Mna.node_index nb in
      stamp_g ia ia gv;
      stamp_g ib ib gv;
      stamp_g ia ib (-.gv);
      stamp_g ib ia (-.gv)
    | Netlist.Capacitor _ -> ()
      (* stamped below together with the MOS capacitances *)
    | Netlist.Vccs { p; n = nn; cp; cn; gm; _ } ->
      let ip = Mna.node_index p and inn = Mna.node_index nn in
      let icp = Mna.node_index cp and icn = Mna.node_index cn in
      stamp_g ip icp gm;
      stamp_g ip icn (-.gm);
      stamp_g inn icp (-.gm);
      stamp_g inn icn gm
    | Netlist.Isource { p; n = nn; ac; _ } ->
      if ac <> 0.0 then begin
        let ip = Mna.node_index p and inn = Mna.node_index nn in
        if ip >= 0 then b.(ip) <- Complex.add b.(ip) { Complex.re = ac; im = 0.0 };
        if inn >= 0 then b.(inn) <- Complex.sub b.(inn) { Complex.re = ac; im = 0.0 }
      end
    | Netlist.Vsource { ac; p; n = nn; _ } ->
      let row = !branch in
      incr branch;
      let ip = Mna.node_index p and inn = Mna.node_index nn in
      stamp_g ip row 1.0;
      stamp_g inn row (-1.0);
      stamp_g row ip 1.0;
      stamp_g row inn (-1.0);
      if ac <> 0.0 then b.(row) <- { Complex.re = ac; im = 0.0 }
    | Netlist.Mos _ -> ()
  in
  List.iter each (Netlist.elements nl);
  (* MOS small-signal conductances from the operating point *)
  List.iter
    (fun (m, (e : Mos_model.eval)) ->
      let id = Mna.node_index m.Netlist.drain
      and ig = Mna.node_index m.Netlist.gate
      and is = Mna.node_index m.Netlist.source
      and ib = Mna.node_index m.Netlist.bulk in
      stamp_g id id e.Mos_model.did_dvd;
      stamp_g id ig e.Mos_model.did_dvg;
      stamp_g id is e.Mos_model.did_dvs;
      stamp_g id ib e.Mos_model.did_dvb;
      stamp_g is id (-.e.Mos_model.did_dvd);
      stamp_g is ig (-.e.Mos_model.did_dvg);
      stamp_g is is (-.e.Mos_model.did_dvs);
      stamp_g is ib (-.e.Mos_model.did_dvb))
    op.Mna.mos_evals;
  (* all capacitances, explicit and MOS *)
  List.iter
    (fun (na, nb, farads) ->
      let ia = Mna.node_index na and ib = Mna.node_index nb in
      stamp_c ia ia farads;
      stamp_c ib ib farads;
      stamp_c ia ib (-.farads);
      stamp_c ib ia (-.farads))
    (List.filter (fun (a, b, f) -> a <> b && f > 0.0) (Mna.linear_capacitors tech nl op));
  (g, c, b)

(* The shared read-only per-sweep state: G and C flattened once into
   bigarray planes, the right-hand side split into unboxed re/im arrays.
   Per frequency point the only matrix work is reloading the workspace
   (re <- G, im <- omega*C, both in place) and an in-place factor/solve in
   this domain's pooled workspace — the sole per-point allocation is the
   solution vector the caller receives. *)
type flat_system = {
  fs_n : int;
  fs_g : Fmat.buf;
  fs_c : Fmat.buf;
  fs_bre : Float.Array.t;
  fs_bim : Float.Array.t;
}

let flatten_system (g, c, (b : Complex.t array)) =
  let n = Array.length b in
  { fs_n = n;
    fs_g = Fmat.flatten g;
    fs_c = Fmat.flatten c;
    fs_bre = Float.Array.init n (fun i -> b.(i).Complex.re);
    fs_bim = Float.Array.init n (fun i -> b.(i).Complex.im) }

(* short sweeps over small systems (a flow's 40-point Bode probe) lose
   more to fan-out than they gain; the grain lets the pool learn that *)
let sweep_grain = Mixsyn_util.Pool.grain "ac.sweep"

let solve ?(tech = Mixsyn_circuit.Tech.generic_07um) ?jobs ?chunk nl op ~freqs =
  Mixsyn_util.Telemetry.count "ac.solves";
  Mixsyn_util.Telemetry.add "ac.freq_points" (Array.length freqs);
  let fs = flatten_system (build_system tech nl op) in
  (* each frequency point is an independent in-place solve against the
     shared read-only flat system; workers claim contiguous frequency
     bands and amortise one pooled complex workspace across a whole band
     (load/factor/solve in place per point), results in frequency order *)
  let solutions =
    Mixsyn_util.Pool.parallel_banded ?jobs ?chunk ~grain:sweep_grain
      (Array.length freqs)
      (fun start len ->
        Fmat.with_cplx fs.fs_n (fun ws ->
            Array.init len (fun k ->
                let omega = 2.0 *. Float.pi *. freqs.(start + k) in
                Fmat.Cplx.load_ac ws ~g:fs.fs_g ~c:fs.fs_c ~omega;
                Fmat.Cplx.set_rhs ws ~re:fs.fs_bre ~im:fs.fs_bim;
                Fmat.Cplx.factor ws;
                let x = Array.make fs.fs_n Complex.zero in
                Fmat.Cplx.solve ws x;
                x)))
  in
  { freqs; solutions; ac_layout = op.Mna.op_layout }

let voltage r k net =
  if net = Netlist.gnd then Complex.zero else r.solutions.(k).(Mna.node_index net)

let magnitude r k net = Complex.norm (voltage r k net)

let phase_deg r k net = Complex.arg (voltage r k net) *. 180.0 /. Float.pi

let log_sweep ~decades_from ~decades_to ~points_per_decade =
  let ppd = float_of_int points_per_decade in
  (* round, don't truncate: a span*ppd product of 2.9999999 from float
     rounding must still yield 3 steps, or the top-decade endpoint is
     silently dropped *)
  let steps = Float.round ((decades_to -. decades_from) *. ppd) in
  let n = int_of_float steps + 1 in
  let exact_span = Float.abs (steps -. ((decades_to -. decades_from) *. ppd)) < 1e-6 in
  let a =
    Array.init n (fun i ->
        (* pin the final point to the requested top decade whenever the
           sweep is meant to land on it, so the endpoint is exact *)
        if exact_span && i = n - 1 then 10.0 ** decades_to
        else 10.0 ** (decades_from +. (float_of_int i /. ppd)))
  in
  assert ((not exact_span) || n = 0 || a.(n - 1) = 10.0 ** decades_to);
  a
