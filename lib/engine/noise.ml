module Netlist = Mixsyn_circuit.Netlist
module Fmat = Mixsyn_util.Fmat

type contribution = {
  source_name : string;
  kind : [ `Thermal | `Flicker ];
  psd : float;
}

type point = {
  freq : float;
  total_psd : float;
  contributions : contribution list;
}

type result = {
  points : point array;
  integrated_rms : float;
}

let integrate series =
  let acc = ref 0.0 in
  for i = 1 to Array.length series - 1 do
    let f0, p0 = series.(i - 1) and f1, p1 = series.(i) in
    acc := !acc +. (0.5 *. (p0 +. p1) *. (f1 -. f0))
  done;
  !acc

let sweep_grain = Mixsyn_util.Pool.grain "noise.sweep"

let analyze ?(tech = Mixsyn_circuit.Tech.generic_07um) ?jobs ?chunk nl op ~out ~freqs =
  let g, c, _b = Ac.build_system tech nl op in
  let n = Array.length g in
  let out_index = Mna.node_index out in
  assert (out_index >= 0);
  (* flatten G and C once; every frequency point reloads the transposed
     (adjoint) system into this domain's pooled workspace in place *)
  let gf = Fmat.flatten g and cf = Fmat.flatten c in
  (* enumerate noise current sources: (name, kind, node a, node b, psd fn) *)
  let resistor_sources =
    List.filter_map
      (function
        | Netlist.Resistor { r_name; a; b; ohms } ->
          let psd _f = 4.0 *. Mixsyn_util.Units.boltzmann *. tech.Mixsyn_circuit.Tech.temp /. ohms in
          Some (r_name, `Thermal, a, b, psd)
        | Netlist.Mos _ | Netlist.Capacitor _ | Netlist.Vsource _
        | Netlist.Isource _ | Netlist.Vccs _ -> None)
      (Netlist.elements nl)
  in
  let mos_sources =
    List.concat_map
      (fun (m, (e : Mos_model.eval)) ->
        let gm = Float.abs e.Mos_model.gm in
        let thermal _f = Mos_model.thermal_noise_psd tech ~gm in
        let flicker f = Mos_model.flicker_noise_psd tech m ~gm ~freq:f in
        [ (m.Netlist.m_name, `Thermal, m.Netlist.drain, m.Netlist.source, thermal);
          (m.Netlist.m_name, `Flicker, m.Netlist.drain, m.Netlist.source, flicker) ])
      op.Mna.mos_evals
  in
  let sources = resistor_sources @ mos_sources in
  (* adjoint system: A^T y = e_out; transfer from an injection (a,b) to
     v_out is y_a - y_b.  [y] is the band's scratch solution vector —
     every point's contributions are folded out of it before the next
     point's solve overwrites it. *)
  let point_of y freq =
    let transfer a b =
      let ya = if a = Netlist.gnd then Complex.zero else y.(Mna.node_index a) in
      let yb = if b = Netlist.gnd then Complex.zero else y.(Mna.node_index b) in
      Complex.norm (Complex.sub ya yb)
    in
    let contributions =
      List.map
        (fun (source_name, kind, a, b, psd_fn) ->
          let h = transfer a b in
          { source_name; kind; psd = h *. h *. psd_fn freq })
        sources
    in
    let total_psd = List.fold_left (fun acc cntr -> acc +. cntr.psd) 0.0 contributions in
    { freq; total_psd; contributions }
  in
  (* one adjoint solve per frequency, independent given the shared
     read-only flat (g, c) — fan out in contiguous frequency bands, one
     pooled workspace and one scratch vector per band, results in order *)
  let points =
    Mixsyn_util.Pool.parallel_banded ?jobs ?chunk ~grain:sweep_grain (Array.length freqs)
      (fun start len ->
        let y = Array.make n Complex.zero in
        Fmat.with_cplx n (fun ws ->
            Array.init len (fun k ->
                let freq = freqs.(start + k) in
                Fmat.Cplx.load_ac_transposed ws ~g:gf ~c:cf ~omega:(2.0 *. Float.pi *. freq);
                Fmat.Cplx.unit_rhs ws out_index;
                Fmat.Cplx.factor ws;
                Fmat.Cplx.solve ws y;
                point_of y freq)))
  in
  let series = Array.map (fun p -> (p.freq, p.total_psd)) points in
  { points; integrated_rms = sqrt (integrate series) }
