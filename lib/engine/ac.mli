(** Small-signal AC analysis around a DC operating point. *)

type result = {
  freqs : float array;
  solutions : Complex.t array array;  (** [solutions.(k)] is the unknown vector at [freqs.(k)] *)
  ac_layout : Mna.layout;
}

val solve :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?jobs:int ->
  ?chunk:int ->
  Mixsyn_circuit.Netlist.t ->
  Mna.op ->
  freqs:float array ->
  result
(** Solves [(G + jωC) x = b] at each frequency, where [G] holds the MOS
    small-signal conductances of the operating point and [b] the AC source
    magnitudes.  [G] and [C] are stamped once into flat read-only planes;
    each frequency point then reloads a per-domain {!Mixsyn_util.Fmat}
    workspace in place (re ← G, im ← ωC) and factor/solves there, so the
    only per-point allocation is the solution vector.  Frequency points
    solve concurrently on the {!Mixsyn_util.Pool} ([jobs] defaults to
    [Pool.default_jobs ()]); workers claim contiguous frequency {e bands}
    of [chunk] points (default: the pool's [n / (jobs * 4)] heuristic).
    [solutions] is in frequency order regardless of [jobs] and [chunk]. *)

val voltage : result -> int -> Mixsyn_circuit.Netlist.net -> Complex.t
(** [voltage r k net] — complex node voltage at frequency index [k]. *)

val magnitude : result -> int -> Mixsyn_circuit.Netlist.net -> float
val phase_deg : result -> int -> Mixsyn_circuit.Netlist.net -> float

val log_sweep : decades_from:float -> decades_to:float -> points_per_decade:int -> float array
(** Logarithmic frequency grid, e.g. [log_sweep ~decades_from:0. ~decades_to:9.
    ~points_per_decade:10] spans 1 Hz to 1 GHz.  The step count is rounded
    to nearest (never truncated), and whenever the sweep is meant to land
    on the top decade the final frequency is exactly [10. ** decades_to]. *)

val build_system :
  Mixsyn_circuit.Tech.t ->
  Mixsyn_circuit.Netlist.t ->
  Mna.op ->
  float array array * float array array * Complex.t array
(** [(g, c, b)] such that the AC system at ω is [(g + jωc) x = b].  Exposed
    for the AWE moment computation and the noise adjoint solver. *)
