module Netlist = Mixsyn_circuit.Netlist

type layout = {
  nets : int;
  branch_names : string array;
  branch_tbl : (string, int) Hashtbl.t;
  size : int;
}

let layout_of nl =
  let branches =
    List.filter_map
      (function
        | Netlist.Vsource { v_name; _ } -> Some v_name
        | Netlist.Mos _ | Netlist.Resistor _ | Netlist.Capacitor _
        | Netlist.Isource _ | Netlist.Vccs _ -> None)
      (Netlist.elements nl)
  in
  let nets = Netlist.net_count nl in
  let branch_names = Array.of_list branches in
  let branch_tbl = Hashtbl.create (Array.length branch_names) in
  (* first occurrence wins, matching the old linear scan on duplicates *)
  Array.iteri
    (fun i name ->
      if not (Hashtbl.mem branch_tbl name) then Hashtbl.add branch_tbl name (nets - 1 + i))
    branch_names;
  { nets; branch_names; branch_tbl; size = nets - 1 + Array.length branch_names }

let node_index n = n - 1

let branch_index layout name = Hashtbl.find layout.branch_tbl name

type op = {
  op_layout : layout;
  x : float array;
  mos_evals : (Netlist.mos * Mos_model.eval) list;
  iterations : int;
}

let voltage op n = if n = Netlist.gnd then 0.0 else op.x.(node_index n)

let branch_current op ~layout name = op.x.(branch_index layout name)

let stamp_real a i j v = if i >= 0 && j >= 0 then a.(i).(j) <- a.(i).(j) +. v

let rhs_real b i v = if i >= 0 then b.(i) <- b.(i) +. v

let stamp_cplx a i j v = if i >= 0 && j >= 0 then a.(i).(j) <- Complex.add a.(i).(j) v

let rhs_cplx b i v = if i >= 0 then b.(i) <- Complex.add b.(i) v

let linear_capacitors tech nl op =
  let explicit =
    List.filter_map
      (function
        | Netlist.Capacitor { a; b; farads; _ } -> Some (a, b, farads)
        | Netlist.Mos _ | Netlist.Resistor _ | Netlist.Vsource _
        | Netlist.Isource _ | Netlist.Vccs _ -> None)
      (Netlist.elements nl)
  in
  let of_mos (m, (e : Mos_model.eval)) =
    let c = Mos_model.capacitances tech m e.Mos_model.region in
    [ (m.Netlist.gate, m.Netlist.source, c.Mos_model.cgs);
      (m.Netlist.gate, m.Netlist.drain, c.Mos_model.cgd);
      (m.Netlist.gate, m.Netlist.bulk, c.Mos_model.cgb);
      (m.Netlist.drain, m.Netlist.bulk, c.Mos_model.cdb);
      (m.Netlist.source, m.Netlist.bulk, c.Mos_model.csb) ]
  in
  explicit @ List.concat_map of_mos op.mos_evals
