module Real = Mixsyn_util.Matrix.Real
module Poly = Mixsyn_util.Poly

type tf = {
  poles : Complex.t array;
  residues : Complex.t array;
  moments : float array;
  order : int;
}

let moments ~g ~c ~b ~out ~count =
  let lu = Real.lu_factor g in
  let n = Array.length b in
  let ms = Array.make count 0.0 in
  let x = ref (Real.lu_solve lu b) in
  ms.(0) <- !x.(out);
  for k = 1 to count - 1 do
    let rhs = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (c.(i).(j) *. !x.(j))
      done;
      rhs.(i) <- -. !acc
    done;
    x := Real.lu_solve lu rhs;
    ms.(k) <- !x.(out)
  done;
  ms

(* Padé at one order; raises Real.Singular when the Hankel system degenerates. *)
let try_pade ms q =
  (* frequency scaling: sigma ~ |m0/m1| keeps the Hankel system conditioned *)
  let sigma =
    if Float.abs ms.(1) > 1e-300 && Float.abs ms.(0) > 1e-300 then Float.abs (ms.(0) /. ms.(1))
    else 1.0
  in
  let mu = Array.mapi (fun k m -> m *. (sigma ** float_of_int k)) ms in
  (* solve for denominator D(s) = 1 + d1 s + ... + dq s^q:
     for k = q..2q-1:  mu_k + sum_{i=1..q} d_i mu_{k-i} = 0 *)
  let a = Real.create q q in
  let rhs = Array.make q 0.0 in
  for row = 0 to q - 1 do
    let k = q + row in
    for i = 1 to q do
      a.(row).(i - 1) <- mu.(k - i)
    done;
    rhs.(row) <- -.mu.(k)
  done;
  let d = Real.solve a rhs in
  let denom = Array.make (q + 1) 0.0 in
  denom.(0) <- 1.0;
  for i = 1 to q do
    denom.(i) <- d.(i - 1)
  done;
  (* numerator n_j = sum_{i=0..j} d_i mu_{j-i}, j = 0..q-1 *)
  let numer =
    Array.init q (fun j ->
        let acc = ref 0.0 in
        for i = 0 to j do
          acc := !acc +. (denom.(i) *. mu.(j - i))
        done;
        !acc)
  in
  let poles_scaled = Poly.roots denom in
  (* residues k_i = N(p_i) / D'(p_i) *)
  let deriv = Poly.derivative denom in
  let residues_scaled =
    Array.map
      (fun p ->
        Complex.div (Poly.eval_complex numer p) (Poly.eval_complex deriv p))
      poles_scaled
  in
  (* validate in the scaled domain: the approximant must reproduce the
     moments it was built from (the Hankel system is notoriously close to
     singular, and LU can return garbage without raising) *)
  let reproduced j =
    (* mu_j = - sum k_i / p_i^(j+1) *)
    let acc = ref Complex.zero in
    Array.iteri
      (fun i p ->
        let rec pow acc k = if k = 0 then acc else pow (Complex.mul acc p) (k - 1) in
        acc := Complex.add !acc (Complex.div residues_scaled.(i) (pow Complex.one (j + 1))))
      poles_scaled;
    -. !acc.Complex.re
  in
  let ok = ref true in
  for j = 0 to min 3 ((2 * q) - 1) do
    let want = mu.(j) in
    let got = reproduced j in
    let scale_ref = Float.max (Float.abs want) (Float.abs mu.(0)) in
    if Float.abs (got -. want) > 1e-4 *. Float.max scale_ref 1e-30 then ok := false
  done;
  if not !ok then raise (Real.Singular q);
  (* undo scaling: s_hat = s / sigma -> p = p_hat * sigma, k = k_hat * sigma *)
  let sigma_c = { Complex.re = sigma; im = 0.0 } in
  let poles = Array.map (fun p -> Complex.mul p sigma_c) poles_scaled in
  let residues = Array.map (fun k -> Complex.mul k sigma_c) residues_scaled in
  { poles; residues; moments = Array.copy ms; order = q }

let pade ms ~order =
  Mixsyn_util.Telemetry.count "awe.pade_calls";
  let max_q = Array.length ms / 2 in
  let fallback q =
    Mixsyn_util.Telemetry.count "awe.order_fallbacks";
    q - 1
  in
  let rec attempt q =
    if q < 1 then begin
      Mixsyn_util.Telemetry.count "awe.pade_failures";
      failwith "awe: no Pade approximant at any order"
    end
    else
      match try_pade ms q with
      | tf ->
        let finite =
          Array.for_all
            (fun (p : Complex.t) -> Float.is_finite p.Complex.re && Float.is_finite p.Complex.im)
            tf.poles
        in
        if finite then tf else attempt (fallback q)
      | exception Real.Singular _ -> attempt (fallback q)
  in
  attempt (min order max_q)

let of_network ~g ~c ~b ~out ~order =
  let ms = moments ~g ~c ~b ~out ~count:(2 * order) in
  pade ms ~order

let of_circuit ?(tech = Mixsyn_circuit.Tech.generic_07um) nl op ~out ~order =
  let g, c, b_cplx = Mixsyn_engine.Ac.build_system tech nl op in
  let b = Array.map (fun (z : Complex.t) -> z.Complex.re) b_cplx in
  of_network ~g ~c ~b ~out:(Mixsyn_engine.Mna.node_index out) ~order

let eval tf s =
  let acc = ref Complex.zero in
  Array.iteri
    (fun i p -> acc := Complex.add !acc (Complex.div tf.residues.(i) (Complex.sub s p)))
    tf.poles;
  !acc

let magnitude tf f = Complex.norm (eval tf { Complex.re = 0.0; im = 2.0 *. Float.pi *. f })

let impulse_response tf t =
  let acc = ref 0.0 in
  Array.iteri
    (fun i (p : Complex.t) ->
      let e = Complex.mul tf.residues.(i) (Complex.exp (Complex.mul p { Complex.re = t; im = 0.0 })) in
      acc := !acc +. e.Complex.re)
    tf.poles;
  !acc

let step_response tf t =
  let acc = ref 0.0 in
  Array.iteri
    (fun i (p : Complex.t) ->
      let k = tf.residues.(i) in
      if Complex.norm p < 1e-12 then acc := !acc +. (k.Complex.re *. t)
      else begin
        let e =
          Complex.mul (Complex.div k p)
            (Complex.sub (Complex.exp (Complex.mul p { Complex.re = t; im = 0.0 })) Complex.one)
        in
        acc := !acc +. e.Complex.re
      end)
    tf.poles;
  !acc

let dominant_pole tf =
  Array.fold_left
    (fun best (p : Complex.t) ->
      if p.Complex.re >= 0.0 then best
      else
        match best with
        | None -> Some p
        | Some q -> if Complex.norm p < Complex.norm q then Some p else best)
    None tf.poles

let stable tf = Array.for_all (fun (p : Complex.t) -> p.Complex.re < 0.0) tf.poles

let stable_part tf =
  let keep =
    Array.to_list (Array.mapi (fun i (p : Complex.t) -> (p, tf.residues.(i))) tf.poles)
    |> List.filter (fun ((p : Complex.t), _) -> p.Complex.re < 0.0)
  in
  { tf with
    poles = Array.of_list (List.map fst keep);
    residues = Array.of_list (List.map snd keep) }
