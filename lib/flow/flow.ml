module Spec = Mixsyn_synth.Spec
module Sizing = Mixsyn_synth.Sizing
module Template = Mixsyn_circuit.Template
module Bounds = Mixsyn_check.Bounds
module I = Mixsyn_util.Interval

type stage_log = {
  stage : string;
  detail : string;
  seconds : float;
}

type outcome = {
  template : Template.t;
  sizing : Sizing.result;
  layout : Mixsyn_layout.Cell_flow.report;
  pre_layout : Spec.performance;
  post_layout : Spec.performance;
  meets_post_layout : bool;
  redesigns : int;
  diagnostics : Mixsyn_check.Diagnostic.t list;
  log : stage_log list;
}

(* each stage runs inside a telemetry span; the outcome keeps the legacy
   [stage_log] list so callers see the same shape as before.  Every stage
   boundary doubles as a cancellation point for batch timeouts. *)
let timed log stage f =
  Mixsyn_util.Cancel.guard ();
  let t0 = Unix.gettimeofday () in
  let result, detail = Mixsyn_util.Telemetry.with_span ("flow." ^ stage) f in
  log := { stage; detail; seconds = Unix.gettimeofday () -. t0 } :: !log;
  result

(* layout preference across placement retries: a completely routed layout
   beats any incomplete one; within the same completeness, smaller area
   wins *)
let better_layout (a : Mixsyn_layout.Cell_flow.report) (b : Mixsyn_layout.Cell_flow.report) =
  match (a.Mixsyn_layout.Cell_flow.complete, b.Mixsyn_layout.Cell_flow.complete) with
  | true, false -> a
  | false, true -> b
  | true, true | false, false ->
    if a.Mixsyn_layout.Cell_flow.area_m2 <= b.Mixsyn_layout.Cell_flow.area_m2 then a else b

let measure_extracted tech template params layout_report =
  let nl = template.Template.build tech params in
  let annotated =
    Mixsyn_layout.Extract.annotate nl layout_report.Mixsyn_layout.Cell_flow.parasitics
  in
  match Mixsyn_engine.Dc.solve ~tech annotated with
  | exception Mixsyn_engine.Dc.No_convergence _ -> []
  | op ->
    let out = Mixsyn_circuit.Netlist.find_net annotated "out" in
    let freqs = Mixsyn_synth.Evaluate.sweep_freqs in
    let ac = Mixsyn_engine.Ac.solve ~tech annotated op ~freqs in
    let bode = Mixsyn_engine.Measure.bode ac ~out in
    let gain = Mixsyn_engine.Measure.dc_gain bode in
    [ ("gain_db", 20.0 *. log10 (Float.max gain 1e-12));
      ("ugf_hz", Option.value (Mixsyn_engine.Measure.unity_gain_freq bode) ~default:0.0);
      ("phase_margin_deg",
       Option.value (Mixsyn_engine.Measure.phase_margin bode) ~default:0.0);
      ("power_w", Mixsyn_engine.Dc.power annotated op) ]

(* ---- cross-job sizing stage cache ------------------------------------- *)

(* The sizing stage dominates flow wall time and is deterministic in the
   inputs {!Sizing.cache_key} serializes, so batch manifests with repeated
   spec prefixes (the stratified-sampler shape) can share one result
   across jobs.  The cache is process-global and lock-striped; misses are
   single-flight per stripe, so two workers that reach the same key
   concurrently compute it once.  Journal byte-identity survives because
   the only result field that is not a pure function of the key —
   [elapsed_s] — never reaches a journal record. *)
let sizing_stage_cache : (string, Sizing.result) Mixsyn_util.Eval_cache.t =
  Mixsyn_util.Eval_cache.create ~size:256 "flow.stage_cache"

let stage_cache_stats () =
  (Mixsyn_util.Eval_cache.hits sizing_stage_cache,
   Mixsyn_util.Eval_cache.misses sizing_stage_cache)

let stage_cache_hit_rate () = Mixsyn_util.Eval_cache.hit_rate sizing_stage_cache

let clear_stage_cache () = Mixsyn_util.Eval_cache.clear sizing_stage_cache

let size_stage ?(tech = Mixsyn_circuit.Tech.generic_07um)
    ?(strategy = Sizing.Awe_annealing) ?schedule ?(stage_cache = true) ?(seed = 1)
    ~context ~specs ~objectives template =
  let compute () =
    Sizing.size ~tech ~seed ?schedule ~context strategy template ~specs ~objectives
  in
  if not stage_cache then compute ()
  else
    let key =
      Sizing.cache_key ~tech ~seed ?schedule ~context strategy template ~specs
        ~objectives
    in
    Mixsyn_util.Eval_cache.find_or_compute sizing_stage_cache key (fun _ -> compute ())

let run ?(tech = Mixsyn_circuit.Tech.generic_07um) ?(seed = 13) ?(max_redesigns = 2)
    ?(candidates = Mixsyn_circuit.Topology.all) ?(checks = true) ?(contract = true) ?jobs
    ?(stage_cache = true) ~specs ~objectives ~context () =
  Mixsyn_util.Telemetry.with_span "flow.run" @@ fun () ->
  let log = ref [] in
  (* 0. static pre-flight: certified interval bounds over every candidate's
     parameter box.  A spec that no candidate can provably reach stops the
     flow here — before any annealing, placement or routing work — naming
     the spec and the certified enclosure that excludes it. *)
  let feas_diags =
    if not checks then []
    else
      timed log "feasibility" (fun () ->
          let drift = List.concat_map (Bounds.annotation_drift ~tech) candidates in
          let per_candidate =
            List.map (fun t -> Bounds.infeasible_specs ~tech ~context specs t) candidates
          in
          let hopeless =
            List.filter
              (fun (s : Spec.t) ->
                per_candidate <> []
                && List.for_all
                     (fun inf -> List.exists (fun (s', _) -> s' == s) inf)
                     per_candidate)
              specs
          in
          let errors =
            List.map
              (fun (s : Spec.t) ->
                let hull =
                  List.fold_left
                    (fun acc inf ->
                      match List.find_opt (fun (s', _) -> s' == s) inf with
                      | Some (_, iv) -> I.hull acc iv
                      | None -> acc)
                    I.empty per_candidate
                in
                Mixsyn_check.Diagnostic.error ~rule:"feas.infeasible-spec"
                  ~loc:s.Spec.s_name
                  (Format.asprintf
                     "%s %s is provably unsatisfiable: certified achievable range %a \
                      across all %d candidate topologies"
                     s.Spec.s_name
                     (Bounds.bound_to_string s.Spec.bound)
                     I.pp hull (List.length candidates)))
              hopeless
          in
          let diags = Mixsyn_check.Lint.gate ~stage:"feas" (errors @ drift) in
          ( diags,
            Printf.sprintf "%d infeasible spec(s), %d drift warning(s)"
              (List.length errors) (List.length drift) ))
  in
  let pre_diags = ref feas_diags in
  (* 1. topology selection: interval pruning (hand tables AND certified
     enclosures) then rule-based ranking *)
  let template =
    timed log "topology-selection" (fun () ->
        let ranges = Bounds.metric_ranges ~tech ~context candidates in
        let feasible = Mixsyn_synth.Topo_select.interval_feasible ~ranges specs candidates in
        let pool =
          if feasible <> [] then feasible
          else begin
            (* widening back to the full candidate list keeps the legacy
               never-give-up behaviour, but doing it silently buried real
               specification problems — say so, and count it *)
            Mixsyn_util.Telemetry.count "flow.no-feasible-topology";
            pre_diags :=
              !pre_diags
              @ [ Mixsyn_check.Diagnostic.warning ~rule:"feas.no-feasible-topology"
                    ~loc:"topology-selection"
                    (Printf.sprintf
                       "no candidate topology passes the interval feasibility screen; \
                        continuing with all %d candidates on a best-effort basis"
                       (List.length candidates)) ];
            candidates
          end
        in
        match Mixsyn_synth.Topo_select.rule_based specs pool with
        | [] -> failwith "flow: no candidate topology"
        | best :: _ ->
          ( best.Mixsyn_synth.Topo_select.template,
            Printf.sprintf "%d candidates -> %s" (List.length candidates)
              best.Mixsyn_synth.Topo_select.template.Template.t_name ))
  in
  (* 1b. branch-and-prune contraction of the selected template's parameter
     box: regions where the certified enclosure proves a spec violated are
     cut away before sizing ever samples them.  Sound, so the contracted
     box still contains every spec-satisfying sizing; when nothing prunes,
     the very same template value flows on and the anneal trajectory is
     bit-identical to a run without contraction. *)
  let template =
    if not contract then template
    else
      timed log "box-contraction" (fun () ->
          let c = Bounds.contract ~tech ~context specs template in
          ( c.Bounds.c_template,
            Printf.sprintf "pruned %d/%d boxes%s" c.Bounds.pruned c.Bounds.explored
              (if c.Bounds.c_infeasible then ", box provably infeasible"
               else if c.Bounds.pruned = 0 then ", box unchanged"
               else "") ))
  in
  (* 2/3. sizing + verification, 4/5. layout + extraction, with redesign *)
  let rec attempt redesigns extra_load =
    Mixsyn_util.Cancel.guard ();
    let context =
      match List.assoc_opt "cl" context with
      | Some cl -> ("cl", cl +. extra_load) :: List.remove_assoc "cl" context
      | None when extra_load > 0.0 ->
        (* no load entry yet: the observed wiring capacitance must still
           reach the next sizing pass rather than being dropped *)
        ("cl", extra_load) :: context
      | None -> context
    in
    (* each redesign sizes against tightened targets so the layout-induced
       degradation lands inside the original specification *)
    let margin = 1.0 +. (0.06 *. float_of_int redesigns) in
    let sizing_specs =
      List.map
        (fun (s : Spec.t) ->
          match s.Spec.bound with
          | Spec.At_least v when v > 0.0 -> { s with Spec.bound = Spec.At_least (v *. margin) }
          | Spec.At_most v when v > 0.0 -> { s with Spec.bound = Spec.At_most (v /. margin) }
          | Spec.At_least _ | Spec.At_most _ | Spec.Between _ -> s)
        specs
    in
    let sizing =
      timed log
        (Printf.sprintf "sizing-pass%d" redesigns)
        (fun () ->
          let r =
            size_stage ~tech ~strategy:Sizing.Awe_annealing ~stage_cache
              ~seed:(seed + redesigns) ~context ~specs:sizing_specs ~objectives template
          in
          (r, Printf.sprintf "cost %.2f, %d evaluations" r.Sizing.cost r.Sizing.evaluations))
    in
    let layout =
      timed log
        (Printf.sprintf "layout-pass%d" redesigns)
        (fun () ->
          let nl = template.Template.build tech sizing.Sizing.params in
          (* retry placement seeds until the router completes, keeping the
             best attempt seen (complete first, then minimum area) rather
             than whatever the last retry produced.  With jobs > 1 all
             retry seeds evaluate eagerly in parallel; the pick rule (first
             complete in seed order, else the [better_layout] fold, which
             ties to the earlier seed) reproduces the lazy loop's answer,
             so the chosen layout never depends on [jobs]. *)
          let base = seed + (7 * redesigns) in
          let retries = 3 in
          let r =
            if Mixsyn_util.Pool.effective_jobs jobs retries > 1 then begin
              let reports =
                Mixsyn_util.Pool.parallel_init ?jobs retries (fun k ->
                    Mixsyn_layout.Cell_flow.koan ~seed:(base + k) ~jobs:1 nl)
              in
              match
                Array.find_opt (fun r -> r.Mixsyn_layout.Cell_flow.complete) reports
              with
              | Some r -> r
              | None ->
                Array.fold_left better_layout reports.(0)
                  (Array.sub reports 1 (retries - 1))
            end
            else begin
              let rec best_layout k best =
                if best.Mixsyn_layout.Cell_flow.complete || k >= retries then best
                else
                  best_layout (k + 1)
                    (better_layout best
                       (Mixsyn_layout.Cell_flow.koan ~seed:(base + k) ?jobs nl))
              in
              best_layout 1 (Mixsyn_layout.Cell_flow.koan ~seed:base ?jobs nl)
            end
          in
          ( r,
            Printf.sprintf "area %.0f um2, %s" (r.Mixsyn_layout.Cell_flow.area_m2 *. 1e12)
              (if r.Mixsyn_layout.Cell_flow.complete then "routed" else "incomplete") ))
    in
    let post_layout =
      timed log
        (Printf.sprintf "extraction-pass%d" redesigns)
        (fun () ->
          let perf = measure_extracted tech template sizing.Sizing.params layout in
          (perf, Format.asprintf "%a" Spec.pp_performance perf))
    in
    (* post-layout verification only re-checks what extraction changes (the
       AC metrics); DC-only metrics keep their schematic values *)
    let check_specs =
      List.filter
        (fun (s : Spec.t) -> List.mem_assoc s.Spec.s_name post_layout)
        specs
    in
    let ok = Spec.satisfied check_specs post_layout in
    if ok || redesigns >= max_redesigns then
      (sizing, layout, post_layout, ok, redesigns)
    else begin
      (* closing the loop: fold the observed wiring load into the next pass *)
      let wiring_cap =
        Mixsyn_layout.Extract.total_wiring_cap layout.Mixsyn_layout.Cell_flow.parasitics
      in
      Mixsyn_util.Telemetry.count "flow.redesigns";
      attempt (redesigns + 1) (extra_load +. (2.0 *. wiring_cap))
    end
  in
  let sizing, layout, post_layout, ok, redesigns = attempt 0 0.0 in
  (* 6. static verification gates on the finished design: ERC over the
     final netlist, DRC over the mask geometry, constraint audit over
     both.  Any [Error] diagnostic raises {!Mixsyn_check.Lint.Check_failed}
     — a flow that ships a broken design is worse than one that stops. *)
  let summarize stage diags =
    ( diags,
      Printf.sprintf "%s: %d error(s), %d warning(s)" stage
        (Mixsyn_check.Diagnostic.count Mixsyn_check.Diagnostic.Error diags)
        (Mixsyn_check.Diagnostic.count Mixsyn_check.Diagnostic.Warning diags) )
  in
  let diagnostics =
    if not checks then !pre_diags
    else begin
      let nl = template.Template.build tech sizing.Sizing.params in
      let erc =
        timed log "check-erc" (fun () ->
            summarize "erc" (Mixsyn_check.Lint.gate ~stage:"erc" (Mixsyn_check.Erc.check nl)))
      in
      let drc =
        timed log "check-drc" (fun () ->
            summarize "drc"
              (Mixsyn_check.Lint.gate ~stage:"drc"
                 (Mixsyn_check.Drc.check (Mixsyn_layout.Cell_flow.tagged_geometry layout))))
      in
      let audit =
        timed log "check-audit" (fun () ->
            summarize "audit"
              (Mixsyn_check.Lint.gate ~stage:"audit" (Mixsyn_check.Audit.check nl layout)))
      in
      !pre_diags @ erc @ drc @ audit
    end
  in
  { template;
    sizing;
    layout;
    pre_layout = sizing.Sizing.performance;
    post_layout;
    meets_post_layout = ok;
    redesigns;
    diagnostics;
    log = List.rev !log }

let pp_outcome ppf o =
  Format.fprintf ppf "flow: %s, %d redesign(s), post-layout %s, checks: %d warning(s)@\n"
    o.template.Template.t_name o.redesigns
    (if o.meets_post_layout then "MET" else "violated")
    (List.length (Mixsyn_check.Diagnostic.warnings o.diagnostics));
  List.iter
    (fun l -> Format.fprintf ppf "  %-22s %6.2fs  %s@\n" l.stage l.seconds l.detail)
    o.log;
  Format.fprintf ppf "  pre-layout:  %a@\n" Spec.pp_performance o.pre_layout;
  Format.fprintf ppf "  post-layout: %a" Spec.pp_performance o.post_layout
