(** High-throughput batch synthesis: many {!Flow.run} jobs, one journal.

    The production workload the ROADMAP points at is not one spec-to-layout
    flow but thousands, executed unattended — so the unit of robustness
    moves from the run to the job.  A batch reads a {e manifest} (JSONL,
    one job per line), executes the jobs concurrently on the shared
    {!Mixsyn_util.Pool}, and streams one record per job to an append-only
    JSONL {e journal}:

    - a per-job wall-clock timeout cancels the job cooperatively (at flow
      stage boundaries and inside the annealer's move loop) and records it
      as [Timed_out] rather than crashing the batch;
    - raised exceptions (solver divergence, {!Mixsyn_check.Lint.Check_failed},
      NaN guards) become structured [Failed] records carrying the error and
      its diagnostics while every other job continues;
    - bounded retries re-run a failing job with a deterministically
      perturbed seed before it is declared failed.

    The journal doubles as a checkpoint: records are flushed in manifest
    order as soon as every earlier job has finished, so an interrupted
    journal is always a clean prefix (plus at most one truncated line,
    which resume discards).  Re-running the same manifest against the same
    journal skips recorded jobs and appends the rest — and because records
    carry no wall-clock data, the completed journal is byte-identical
    whether the run was interrupted or not, at any job count.

    {2 Manifest format}

    One JSON object per line.  [id] is required and must be unique;
    everything else has defaults:
    {v
{"id": "ota-70db", "seed": 13,
 "specs": [{"name": "gain_db", "at_least": 70.0},
           {"name": "ugf_hz", "at_least": 1e7},
           {"name": "phase_margin_deg", "at_least": 60.0}],
 "objectives": [{"minimize": "power_w"}],
 "context": {"cl": 5e-12},
 "topology": "miller-ota", "max_redesigns": 2, "timeout_s": 120}
    v}
    Spec bounds are [at_least], [at_most] or [between: [lo, hi]], each with
    an optional [weight]; objectives are [minimize]/[maximize] with an
    optional [weight].  [topology] restricts candidate selection to one
    template; [timeout_s] overrides the batch-wide timeout for that job.
    A [fault] field ("raise" or "hang") injects a deliberate failure —
    that is how the CI smoke proves the failure taxonomy without waiting
    for a real divergence. *)

type fault =
  | Raise  (** the job raises immediately — exercises the [Failed] path *)
  | Hang   (** the job spins at a guard point until its timeout cancels it *)

type job = {
  job_id : string;
  seed : int;  (** default 13, like {!Flow.run} *)
  specs : Mixsyn_synth.Spec.t list;
  objectives : Mixsyn_synth.Spec.objective list;
  context : (string * float) list;
  topology : string option;      (** restrict candidates to this template *)
  max_redesigns : int option;
  timeout_s : float option;      (** per-job override of the batch timeout *)
  fault : fault option;
}

type failure = {
  error : string;                (** stable one-line classification *)
  diagnostics : string list;     (** e.g. lint rule ids with locations *)
}

(** Why a prefiltered job never ran: the spec the certified interval
    bounds ({!Mixsyn_check.Bounds}) prove unsatisfiable on every candidate
    topology the job could have selected, and the hull of the excluding
    enclosures. *)
type infeasibility = {
  inf_spec : string;   (** the provably unsatisfiable spec's metric name *)
  inf_bound : string;  (** its bound, rendered (e.g. ["at least 1000"]) *)
  inf_lo : float;      (** certified achievable range, lower end *)
  inf_hi : float;      (** certified achievable range, upper end *)
}

type status =
  | Completed of Mixsyn_util.Json.t  (** the executor's result object *)
  | Failed of failure
  | Timed_out
  | Infeasible of infeasibility
      (** skipped by the static prefilter; the executor never ran *)
  | Cancelled
      (** explicitly cancelled by a client of the synthesis service
          ({!Serve}); batch runs never produce it, but resume must parse
          it, because a serve journal is a valid batch journal *)

type record = {
  rec_id : string;
  rec_seed : int;  (** the (possibly retry-perturbed) seed actually used *)
  attempts : int;  (** [0] for prefiltered jobs *)
  status : status;
}

type summary = {
  total : int;          (** manifest size *)
  completed : int;
  failed : int;
  timed_out : int;
  cancelled : int;      (** only non-zero when resuming a serve journal *)
  prefiltered : int;    (** jobs skipped as provably infeasible *)
  skipped : int;        (** jobs already recorded in the journal *)
  run_jobs : int;       (** worker count the batch ran with *)
  elapsed_s : float;
  cache_hits : int;     (** sizing stage-cache hits during this run *)
  cache_misses : int;   (** sizing stage-cache misses during this run *)
  domain_busy_s : (int * float) list;
      (** per-domain busy seconds during this run (slot 0 is the calling
          domain), from the [pool.domain.<i>.busy_us] telemetry counters *)
  records : record list;  (** every record, in manifest order *)
}

(** {2 Manifest and journal IO} *)

val job_of_json : Mixsyn_util.Json.t -> (job, string) result

val manifest_of_string : string -> (job list, string) result
(** Parse JSONL manifest text.  Blank lines and [#] comment lines are
    skipped; errors carry the line number; duplicate ids are rejected. *)

val load_manifest : string -> (job list, string) result
(** {!manifest_of_string} over a file's contents. *)

val record_to_json : record -> Mixsyn_util.Json.t
val record_of_json : Mixsyn_util.Json.t -> (record, string) result

val read_journal : string -> record list * int
(** Parse a journal file: the records of its longest valid prefix and that
    prefix's byte length (a trailing truncated or malformed line is not
    part of it).  A missing file reads as [([], 0)]. *)

(** {2 The in-order journal writer}

    The checkpoint machinery {!run} is built on, exported so the synthesis
    service ({!Serve}) journals its accepted jobs through the exact same
    path — which is what makes a serve journal byte-identical to the
    equivalent batch journal.  Records may be pushed in any completion
    order under any index; lines reach the disk strictly in index order,
    each flushed as soon as every earlier index has been written, so the
    file is always a clean prefix of the final journal. *)

type journal_writer

val journal_open : string -> record list * journal_writer
(** Open [path] as a journal to append to: parse its longest valid prefix,
    truncate any interruption damage after it, and return the recorded
    prefix plus a writer whose index 0 is the next line to append.
    Indices passed to {!journal_push} are relative to this open — resume
    code maps them onto its own pending order. *)

val journal_push : journal_writer -> int -> record -> unit
(** [journal_push w i r] buffers [r] as line [i] (0-based, relative to
    {!journal_open}) and flushes every contiguous buffered line.  The
    record is rendered to canonical JSON on the calling thread, off the
    writer lock.  Thread-safe. *)

val journal_close : journal_writer -> unit
(** Close the underlying channel.  Records buffered behind a gap (an index
    that was never pushed) are dropped — exactly what interruption at that
    point would have produced. *)

(** {2 Execution} *)

val flow_executor : ?stage_cache:bool -> job -> seed:int -> Mixsyn_util.Json.t
(** The default executor: {!Flow.run} with the job's specification set,
    rendered to the deterministic result object journals record (topology,
    cost, evaluations, redesigns, post-layout performance, check-warning
    count — never wall-clock times).  [stage_cache] (default [true])
    routes the sizing stage through the process-global cross-job cache
    ({!Flow.size_stage}); records are byte-identical either way. *)

val run_job :
  ?timeout_s:float ->
  ?retries:int ->
  ?executor:(job -> seed:int -> Mixsyn_util.Json.t) ->
  ?on_attempt:(Mixsyn_util.Cancel.token -> unit) ->
  job ->
  record
(** Execute one job with the batch robustness controls but no journal:
    attempt [1 + retries] times on exceptions (attempt [k] uses
    [seed + 1_000_003 * k]), map an expired timeout to [Timed_out]
    (timeouts are not retried), and trap everything else into [Failed].
    [on_attempt] is called with each attempt's {!Mixsyn_util.Cancel}
    token before the attempt starts — the hook the service uses to cancel
    a job that is already running (cancellation surfaces as [Timed_out];
    the caller that requested it remaps to [Cancelled]). *)

val prefilter_job : job -> record option
(** The static feasibility screen, exported for callers that accept jobs
    one at a time (the service): [Some record] with an [Infeasible] status
    when certified interval bounds prove a spec unsatisfiable on every
    candidate topology, [None] when the job must execute.  A pure function
    of the job — never wall-clock, never random — so prefiltered records
    keep the journal's byte-identity.  Fault-injected jobs and jobs naming
    an unknown topology always return [None]. *)

val run :
  ?jobs:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?prefilter:bool ->
  ?stage_cache:bool ->
  ?executor:(job -> seed:int -> Mixsyn_util.Json.t) ->
  journal:string ->
  job list ->
  summary
(** Run a whole manifest against [journal].  Jobs already recorded are
    skipped; a truncated trailing line is cut before appending; the rest
    execute on up to [jobs] (default {!Mixsyn_util.Pool.default_jobs})
    domains, each inside {!Mixsyn_util.Pool.sequential_scope} so the flows
    inside do not contend for the pool.  Whole jobs are the unit of work
    stealing (pool chunk 1): each domain claims one job at a time from the
    shared queue, keeping its warm per-domain workspaces across the
    consecutive jobs it claims and staying busy until the manifest drains
    even when job costs differ by orders of magnitude.  Each worker
    serializes its own records to canonical JSON off the writer lock; the
    writer only orders lines and appends them in manifest order, flushed
    as soon as contiguous, so an interruption at any point leaves a
    resumable prefix.

    Unless [stage_cache] is [false], jobs share the process-global sizing
    stage cache ({!Flow.size_stage}): manifests with repeated (topology,
    specs, objectives, context, seed) combinations size once and reuse the
    result, single-flight under concurrency.  Journals are byte-identical
    with the cache on or off; the summary reports this run's hit/miss
    delta and the per-domain busy seconds.

    Unless [prefilter] is [false], every job first passes through the
    static feasibility screen: a job with a spec that
    {!Mixsyn_check.Bounds} proves unsatisfiable on all of its candidate
    topologies is journalled as [Infeasible] (with the spec, its bound and
    the certified enclosure) without ever entering the executor — no
    annealing, no layout, no timeout slot.  The decision is a pure
    function of the job, so prefiltered records preserve the journal's
    byte-identity across worker counts and resumes.  Fault-injected jobs
    and jobs naming an unknown topology are never prefiltered.  Skip
    counts land in the [batch.prefiltered] telemetry counter.

    For a pure executor the finished journal's bytes depend only on the
    manifest, never on [jobs] or on how often the run was interrupted.

    @raise Invalid_argument on duplicate manifest ids, a journal record
    whose id is not in the manifest, or [retries < 0]. *)

val summary_to_json : summary -> Mixsyn_util.Json.t

val pp_summary : Format.formatter -> summary -> unit
(** Counts, throughput, the telemetry rollup and one line per non-completed
    job. *)
