(* The synthesis service: Batch execution behind a small HTTP/1.1 loop.

   Concurrency model, chosen for auditability over raw connection count:
   - one accept loop (the calling domain) multiplexing with [Unix.select]
     at a 0.1 s tick so it notices the drain flag promptly;
   - one lightweight thread per accepted connection, which only parses
     requests and manipulates the shared state under [lock] — it never
     executes synthesis work, so a slow client cannot stall a job;
   - [config.workers] dedicated domains pulling whole jobs from the
     bounded queue, each inside [Pool.sequential_scope] exactly like a
     batch worker.

   The journal is the contract surface: every admitted job gets the next
   submission-order index and is eventually pushed through
   [Batch.journal_push] — executed, prefiltered, or cancelled-while-queued
   — so the in-order writer never stalls on a hole and the file is always
   a clean resumable prefix, byte-identical to the equivalent batch run. *)

module Json = Mixsyn_util.Json
module Http = Mixsyn_util.Http
module Cancel = Mixsyn_util.Cancel
module Pool = Mixsyn_util.Pool
module Telemetry = Mixsyn_util.Telemetry

type config = {
  host : string;
  port : int;
  journal : string;
  workers : int;
  queue_capacity : int;
  rate_limit : float;
  rate_burst : float;
  timeout_s : float option;
  retries : int;
  prefilter : bool;
  request_timeout_s : float;
}

let default_config ~journal =
  { host = "127.0.0.1";
    port = 0;
    journal;
    workers = Mixsyn_util.Pool.default_jobs ();
    queue_capacity = 64;
    rate_limit = 0.0;
    rate_burst = 8.0;
    timeout_s = None;
    retries = 0;
    prefilter = true;
    request_timeout_s = 10.0 }

type job_state =
  | Queued
  | Running
  | Done of Batch.record

type entry = {
  e_id : string;
  e_index : int;  (* journal line index this session; -1 for resumed records *)
  e_job : Batch.job option;  (* None for resumed records *)
  mutable e_state : job_state;
  mutable e_token : Cancel.token option;
  mutable e_cancel : bool;
}

type bucket = { mutable tokens : float; mutable last : float }

type handle = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  drain_flag : bool Atomic.t;
  lock : Mutex.t;
  work : Condition.t;
  queue : entry Queue.t;
  jobs : (string, entry) Hashtbl.t;
  mutable order : string list;  (* submission order, reversed *)
  mutable running : int;
  mutable next_index : int;
  writer : Batch.journal_writer;
  executor : Batch.job -> seed:int -> Json.t;
  buckets : (string, bucket) Hashtbl.t;
  requests : int Atomic.t;
  mutable accepted : int;
  resumed : int;
  mutable finished : int;
  mutable cancelled_n : int;
  mutable rej_queue_full : int;
  mutable rej_rate_limited : int;
  mutable rej_draining : int;
}

type stats = {
  requests : int;
  accepted : int;
  resumed : int;
  finished : int;
  cancelled : int;
  rejected_queue_full : int;
  rejected_rate_limited : int;
  rejected_draining : int;
}

let port h = h.bound_port
let drain h = Atomic.set h.drain_flag true
let draining h = Atomic.get h.drain_flag

let locked h f =
  Mutex.lock h.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

(* ---- views ------------------------------------------------------------- *)

let status_name (r : Batch.record) =
  match r.Batch.status with
  | Batch.Completed _ -> "completed"
  | Batch.Failed _ -> "failed"
  | Batch.Timed_out -> "timed_out"
  | Batch.Infeasible _ -> "infeasible"
  | Batch.Cancelled -> "cancelled"

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done r -> status_name r

let entry_view e = Json.Obj [ ("id", Json.Str e.e_id); ("state", Json.Str (state_name e.e_state)) ]

let err msg = Json.Obj [ ("error", Json.Str msg) ]

(* ---- admission --------------------------------------------------------- *)

(* token bucket per client; called under [lock] *)
let rate_limited h client =
  if h.cfg.rate_limit <= 0.0 then None
  else begin
    let now = Unix.gettimeofday () in
    let b =
      match Hashtbl.find_opt h.buckets client with
      | Some b -> b
      | None ->
        let b = { tokens = h.cfg.rate_burst; last = now } in
        Hashtbl.replace h.buckets client b;
        b
    in
    b.tokens <- Float.min h.cfg.rate_burst (b.tokens +. ((now -. b.last) *. h.cfg.rate_limit));
    b.last <- now;
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      None
    end
    else Some (max 1 (int_of_float (Float.ceil ((1.0 -. b.tokens) /. h.cfg.rate_limit))))
  end

let submit h client body =
  if Atomic.get h.drain_flag then begin
    locked h (fun () -> h.rej_draining <- h.rej_draining + 1);
    Telemetry.count "serve.rejected.draining";
    (503, [], Json.to_string (err "draining: not admitting new jobs"))
  end
  else
    match
      let ( let* ) = Result.bind in
      let* json = Json.parse body in
      Batch.job_of_json json
    with
    | Error msg -> (400, [], Json.to_string (err msg))
    | Ok job ->
      locked h @@ fun () ->
      (match Hashtbl.find_opt h.jobs job.Batch.job_id with
       | Some e -> (200, [], Json.to_string (entry_view e))
       | None ->
         (match rate_limited h client with
          | Some retry_after ->
            h.rej_rate_limited <- h.rej_rate_limited + 1;
            Telemetry.count "serve.rejected.rate_limited";
            ( 429,
              [ ("Retry-After", string_of_int retry_after) ],
              Json.to_string (err "rate limit exceeded") )
          | None ->
            if Queue.length h.queue >= h.cfg.queue_capacity then begin
              h.rej_queue_full <- h.rej_queue_full + 1;
              Telemetry.count "serve.rejected.queue_full";
              (429, [ ("Retry-After", "1") ], Json.to_string (err "work queue full"))
            end
            else begin
              let idx = h.next_index in
              h.next_index <- idx + 1;
              h.accepted <- h.accepted + 1;
              Telemetry.count "serve.accepted";
              let e =
                { e_id = job.Batch.job_id;
                  e_index = idx;
                  e_job = Some job;
                  e_state = Queued;
                  e_token = None;
                  e_cancel = false }
              in
              Hashtbl.replace h.jobs e.e_id e;
              h.order <- e.e_id :: h.order;
              (match if h.cfg.prefilter then Batch.prefilter_job job else None with
               | Some r ->
                 e.e_state <- Done r;
                 Batch.journal_push h.writer idx r;
                 h.finished <- h.finished + 1
               | None ->
                 Queue.push e h.queue;
                 Condition.signal h.work);
              (202, [], Json.to_string (entry_view e))
            end))

let cancel_job h id =
  locked h @@ fun () ->
  match Hashtbl.find_opt h.jobs id with
  | None -> (404, [], Json.to_string (err (Printf.sprintf "unknown job %S" id)))
  | Some e ->
    (match e.e_state with
     | Done _ ->
       (409, [], Json.to_string (err (Printf.sprintf "job %S already finished" id)))
     | Queued ->
       (* journal the cancellation at the entry's index right away: the
          worker that eventually pops it skips Done entries, and the
          in-order writer gets the index it is owed *)
       e.e_cancel <- true;
       let job = Option.get e.e_job in
       let r =
         { Batch.rec_id = e.e_id;
           rec_seed = job.Batch.seed;
           attempts = 0;
           status = Batch.Cancelled }
       in
       e.e_state <- Done r;
       Batch.journal_push h.writer e.e_index r;
       h.finished <- h.finished + 1;
       h.cancelled_n <- h.cancelled_n + 1;
       Telemetry.count "serve.cancelled";
       (200, [], Json.to_string (entry_view e))
     | Running ->
       e.e_cancel <- true;
       Option.iter Cancel.cancel e.e_token;
       ( 202,
         [],
         Json.to_string
           (Json.Obj [ ("id", Json.Str id); ("state", Json.Str "cancelling") ]) ))

(* ---- read-side routes -------------------------------------------------- *)

let job_list h =
  locked h @@ fun () ->
  let views =
    List.rev_map (fun id -> entry_view (Hashtbl.find h.jobs id)) h.order
  in
  (200, [], Json.to_string (Json.Obj [ ("jobs", Json.Arr views) ]))

let job_status h id =
  locked h @@ fun () ->
  match Hashtbl.find_opt h.jobs id with
  | None -> (404, [], Json.to_string (err (Printf.sprintf "unknown job %S" id)))
  | Some e -> (200, [], Json.to_string (entry_view e))

let job_result h id =
  locked h @@ fun () ->
  match Hashtbl.find_opt h.jobs id with
  | None -> (404, [], Json.to_string (err (Printf.sprintf "unknown job %S" id)))
  | Some e ->
    (match e.e_state with
     | Done r ->
       (* exactly the journal line's bytes: the render is the same
          canonical [record_to_json] the writer used *)
       (200, [], Json.to_string (Batch.record_to_json r))
     | Queued | Running ->
       ( 409,
         [],
         Json.to_string (err (Printf.sprintf "job %S is %s" id (state_name e.e_state))) ))

let healthz h =
  ( 200,
    [],
    Json.to_string
      (Json.Obj
         [ ("status", Json.Str "ok"); ("draining", Json.Bool (Atomic.get h.drain_flag)) ]) )

let metrics h =
  let queue_depth, running, by_state, counters =
    locked h (fun () ->
        let tally = Hashtbl.create 8 in
        Hashtbl.iter
          (fun _ e ->
            let k = state_name e.e_state in
            Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
          h.jobs;
        let by_state =
          List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
        in
        ( Queue.length h.queue,
          h.running,
          by_state,
          ( h.accepted,
            h.resumed,
            h.finished,
            h.rej_queue_full,
            h.rej_rate_limited,
            h.rej_draining ) ))
  in
  let accepted, resumed, finished, qfull, rlim, rdrain = counters in
  let hits, misses = Flow.stage_cache_stats () in
  let hit_rate =
    if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)
  in
  let worker_busy =
    List.init h.cfg.workers (fun i ->
        ( string_of_int i,
          Json.Num
            (float_of_int (Telemetry.counter (Printf.sprintf "serve.worker.%d.busy_us" i))
            *. 1e-6) ))
  in
  let body =
    Json.Obj
      [ ( "queue",
          Json.Obj
            [ ("depth", Json.Num (float_of_int queue_depth));
              ("capacity", Json.Num (float_of_int h.cfg.queue_capacity));
              ("running", Json.Num (float_of_int running)) ] );
        ( "jobs",
          Json.Obj
            (( "accepted", Json.Num (float_of_int accepted) )
             :: ( "resumed", Json.Num (float_of_int resumed) )
             :: ( "finished", Json.Num (float_of_int finished) )
             :: List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) by_state) );
        ( "rejected",
          Json.Obj
            [ ("queue_full", Json.Num (float_of_int qfull));
              ("rate_limited", Json.Num (float_of_int rlim));
              ("draining", Json.Num (float_of_int rdrain)) ] );
        ( "stage_cache",
          Json.Obj
            [ ("hits", Json.Num (float_of_int hits));
              ("misses", Json.Num (float_of_int misses));
              ("hit_rate", Json.Num hit_rate) ] );
        ("worker_busy_s", Json.Obj worker_busy);
        ("requests", Json.Num (float_of_int (Atomic.get h.requests)));
        ("draining", Json.Bool (Atomic.get h.drain_flag));
        ("telemetry", Telemetry.to_json_value ()) ]
  in
  (200, [], Json.to_string body)

(* ---- routing ----------------------------------------------------------- *)

let segments path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let route h client (req : Http.request) =
  match (req.Http.meth, segments req.Http.path) with
  | "GET", [ "healthz" ] -> healthz h
  | "GET", [ "metrics" ] -> metrics h
  | "POST", [ "jobs" ] -> submit h client req.Http.body
  | "GET", [ "jobs" ] -> job_list h
  | "GET", [ "jobs"; id ] -> job_status h id
  | "GET", [ "jobs"; id; "result" ] -> job_result h id
  | "POST", [ "jobs"; id; "cancel" ] -> cancel_job h id
  | "POST", [ "drain" ] ->
    drain h;
    (202, [], Json.to_string (Json.Obj [ ("draining", Json.Bool true) ]))
  | _, ([ "healthz" ] | [ "metrics" ] | [ "jobs" ] | [ "drain" ] | [ "jobs"; _ ]
       | [ "jobs"; _; ("result" | "cancel") ]) ->
    (405, [], Json.to_string (err (Printf.sprintf "method %s not allowed here" req.Http.meth)))
  | _ -> (404, [], Json.to_string (err (Printf.sprintf "unknown route %s" req.Http.path)))

(* ---- connection handling ----------------------------------------------- *)

let client_of fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (addr, _) -> Unix.string_of_inet_addr addr
  | Unix.ADDR_UNIX _ -> "local"
  | exception Unix.Unix_error _ -> "unknown"

let handle_conn h fd =
  let client = client_of fd in
  let c = Http.conn fd in
  let rec loop () =
    match Http.next_request ~timeout_s:h.cfg.request_timeout_s c with
    | Ok req ->
      Atomic.incr h.requests;
      Telemetry.count "serve.requests";
      (* per-request deadline: route handlers run under an ambient Cancel
         token so anything guarded inside them respects the same budget as
         the socket read *)
      let token = Cancel.create ~timeout_s:h.cfg.request_timeout_s () in
      let status, headers, body =
        match Cancel.with_token token (fun () -> route h client req) with
        | v -> v
        | exception Cancel.Cancelled -> (408, [], Json.to_string (err "request deadline"))
        | exception exn -> (500, [], Json.to_string (err (Printexc.to_string exn)))
      in
      let close =
        match Http.header req "connection" with
        | Some v -> String.lowercase_ascii (String.trim v) = "close"
        | None -> false
      in
      Http.respond ~headers ~close fd ~status ~body;
      if not close then loop ()
    | Error Http.Closed | Error Http.Torn ->
      (* peer gone — between requests is normal, mid-request is its loss *)
      ()
    | Error Http.Timeout ->
      Http.respond fd ~status:408 ~body:(Json.to_string (err "request read timeout"))
    | Error (Http.Too_big msg) ->
      Http.respond fd ~status:413 ~body:(Json.to_string (err msg))
    | Error (Http.Bad msg) ->
      (* framing is unknown after a malformed request: answer and close *)
      Http.respond fd ~status:400 ~body:(Json.to_string (err msg))
  in
  (try loop () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- workers ----------------------------------------------------------- *)

let worker_loop h slot =
  let busy = Printf.sprintf "serve.worker.%d.busy_us" slot in
  let rec next () =
    Mutex.lock h.lock;
    while Queue.is_empty h.queue && not (Atomic.get h.drain_flag) do
      Condition.wait h.work h.lock
    done;
    if Queue.is_empty h.queue then begin
      (* draining and nothing left: this worker is done *)
      Mutex.unlock h.lock
    end
    else begin
      let e = Queue.pop h.queue in
      match e.e_state with
      | Done _ ->
        (* cancelled while queued; already journalled *)
        Mutex.unlock h.lock;
        next ()
      | Queued | Running ->
        e.e_state <- Running;
        h.running <- h.running + 1;
        Mutex.unlock h.lock;
        let job = Option.get e.e_job in
        let t0 = Unix.gettimeofday () in
        let r =
          Pool.sequential_scope (fun () ->
              Batch.run_job ?timeout_s:h.cfg.timeout_s ~retries:h.cfg.retries
                ~executor:h.executor
                ~on_attempt:(fun token ->
                  locked h (fun () ->
                      e.e_token <- Some token;
                      if e.e_cancel then Cancel.cancel token))
                job)
        in
        Telemetry.add busy (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
        locked h (fun () ->
            (* an explicit cancel surfaces from run_job as Timed_out; the
               requested taxonomy wins in the journal *)
            let r =
              if e.e_cancel && r.Batch.status = Batch.Timed_out then
                { r with Batch.status = Batch.Cancelled }
              else r
            in
            e.e_state <- Done r;
            e.e_token <- None;
            Batch.journal_push h.writer e.e_index r;
            h.finished <- h.finished + 1;
            if r.Batch.status = Batch.Cancelled then begin
              h.cancelled_n <- h.cancelled_n + 1;
              Telemetry.count "serve.cancelled"
            end;
            h.running <- h.running - 1);
        next ()
    end
  in
  next ()

(* ---- the accept loop --------------------------------------------------- *)

let rec accept_loop h =
  let finished =
    Atomic.get h.drain_flag
    && locked h (fun () ->
           (* wake any idle worker so it can observe the drain and exit *)
           Condition.broadcast h.work;
           Queue.is_empty h.queue && h.running = 0)
  in
  if not finished then begin
    (match Unix.select [ h.listen_fd ] [] [] 0.1 with
     | [], _, _ -> ()
     | _ :: _, _, _ ->
       (match Unix.accept h.listen_fd with
        | fd, _ -> ignore (Thread.create (handle_conn h) fd)
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
          ())
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop h
  end

let run ?executor ?on_ready cfg =
  if cfg.workers < 1 then
    invalid_arg (Printf.sprintf "Serve.run: workers %d < 1" cfg.workers);
  if cfg.queue_capacity < 1 then
    invalid_arg (Printf.sprintf "Serve.run: queue capacity %d < 1" cfg.queue_capacity);
  (* a peer closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let executor =
    match executor with Some e -> e | None -> Batch.flow_executor ~stage_cache:true
  in
  let recorded, writer = Batch.journal_open cfg.journal in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen listen_fd 64
   with
  | () -> ()
  | exception exn ->
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    Batch.journal_close writer;
    raise exn);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let h =
    { cfg;
      listen_fd;
      bound_port;
      drain_flag = Atomic.make false;
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      jobs = Hashtbl.create 64;
      order = [];
      running = 0;
      next_index = 0;
      writer;
      executor;
      buckets = Hashtbl.create 16;
      requests = Atomic.make 0;
      accepted = 0;
      resumed = List.length recorded;
      finished = 0;
      cancelled_n = 0;
      rej_queue_full = 0;
      rej_rate_limited = 0;
      rej_draining = 0 }
  in
  (* adopt the journal's valid prefix: those jobs are already done, and a
     resubmission of the same id answers instantly from the record *)
  List.iter
    (fun (r : Batch.record) ->
      let e =
        { e_id = r.Batch.rec_id;
          e_index = -1;
          e_job = None;
          e_state = Done r;
          e_token = None;
          e_cancel = false }
      in
      Hashtbl.replace h.jobs e.e_id e;
      h.order <- e.e_id :: h.order)
    recorded;
  let workers = Array.init cfg.workers (fun i -> Domain.spawn (fun () -> worker_loop h i)) in
  Option.iter (fun f -> f h) on_ready;
  accept_loop h;
  locked h (fun () -> Condition.broadcast h.work);
  Array.iter Domain.join workers;
  Batch.journal_close h.writer;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  { requests = Atomic.get h.requests;
    accepted = h.accepted;
    resumed = h.resumed;
    finished = h.finished;
    cancelled = h.cancelled_n;
    rejected_queue_full = h.rej_queue_full;
    rejected_rate_limited = h.rej_rate_limited;
    rejected_draining = h.rej_draining }
