(* Batch synthesis: a manifest of flow jobs in, an append-only journal of
   per-job records out.

   The deterministic core is the journal writer: results may finish in any
   order under any job count, but they are buffered and flushed strictly in
   manifest order, so the file on disk is always a clean prefix of the
   final journal.  Interruption (SIGKILL included) therefore costs at most
   one truncated trailing line, which resume cuts before appending — and a
   resumed journal finishes byte-identical to an uninterrupted one. *)

module Json = Mixsyn_util.Json
module Spec = Mixsyn_synth.Spec
module Cancel = Mixsyn_util.Cancel
module I = Mixsyn_util.Interval

type fault = Raise | Hang

type job = {
  job_id : string;
  seed : int;
  specs : Spec.t list;
  objectives : Spec.objective list;
  context : (string * float) list;
  topology : string option;
  max_redesigns : int option;
  timeout_s : float option;
  fault : fault option;
}

type failure = {
  error : string;
  diagnostics : string list;
}

type infeasibility = {
  inf_spec : string;
  inf_bound : string;
  inf_lo : float;
  inf_hi : float;
}

type status =
  | Completed of Json.t
  | Failed of failure
  | Timed_out
  | Infeasible of infeasibility
  | Cancelled

type record = {
  rec_id : string;
  rec_seed : int;
  attempts : int;
  status : status;
}

type summary = {
  total : int;
  completed : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  prefiltered : int;
  skipped : int;
  run_jobs : int;
  elapsed_s : float;
  cache_hits : int;
  cache_misses : int;
  domain_busy_s : (int * float) list;
  records : record list;
}

(* ---- manifest parsing ------------------------------------------------- *)

let ( let* ) = Result.bind

let field_float name json =
  match Json.member name json with
  | None -> Ok None
  | Some v ->
    (match Json.to_float v with
     | Some x -> Ok (Some x)
     | None -> Error (Printf.sprintf "field %S must be a number" name))

let field_int name json =
  match Json.member name json with
  | None -> Ok None
  | Some v ->
    (match Json.to_int v with
     | Some x -> Ok (Some x)
     | None -> Error (Printf.sprintf "field %S must be an integer" name))

let spec_of_json json =
  let* name =
    match Option.bind (Json.member "name" json) Json.to_str with
    | Some n -> Ok n
    | None -> Error "spec needs a \"name\" string"
  in
  let* weight = field_float "weight" json in
  let weight = Option.value weight ~default:1.0 in
  let* bound =
    match
      ( Option.bind (Json.member "at_least" json) Json.to_float,
        Option.bind (Json.member "at_most" json) Json.to_float,
        Option.bind (Json.member "between" json) Json.to_list )
    with
    | Some v, None, None -> Ok (Spec.At_least v)
    | None, Some v, None -> Ok (Spec.At_most v)
    | None, None, Some [ lo; hi ] ->
      (match (Json.to_float lo, Json.to_float hi) with
       | Some lo, Some hi -> Ok (Spec.Between (lo, hi))
       | _ -> Error (Printf.sprintf "spec %s: \"between\" needs two numbers" name))
    | None, None, None ->
      Error (Printf.sprintf "spec %s needs at_least, at_most or between" name)
    | _ -> Error (Printf.sprintf "spec %s has more than one bound" name)
  in
  Ok (Spec.spec ~weight name bound)

let objective_of_json json =
  let* weight = field_float "weight" json in
  let weight = Option.value weight ~default:1.0 in
  match
    ( Option.bind (Json.member "minimize" json) Json.to_str,
      Option.bind (Json.member "maximize" json) Json.to_str )
  with
  | Some n, None -> Ok (Spec.minimize ~weight n)
  | None, Some n -> Ok (Spec.maximize ~weight n)
  | _ -> Error "objective needs exactly one of \"minimize\" / \"maximize\""

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* v = f x in
    let* vs = collect f rest in
    Ok (v :: vs)

let job_of_json json =
  let* job_id =
    match Option.bind (Json.member "id" json) Json.to_str with
    | Some id when id <> "" -> Ok id
    | Some _ -> Error "job \"id\" must be non-empty"
    | None -> Error "job needs an \"id\" string"
  in
  let ctx msg = Printf.sprintf "job %s: %s" job_id msg in
  let* seed = Result.map_error ctx (field_int "seed" json) in
  let seed = Option.value seed ~default:13 in
  let* specs =
    match Json.member "specs" json with
    | None -> Ok []
    | Some v ->
      (match Json.to_list v with
       | Some items -> Result.map_error ctx (collect spec_of_json items)
       | None -> Error (ctx "\"specs\" must be an array"))
  in
  let* objectives =
    match Json.member "objectives" json with
    | None -> Ok [ Spec.minimize "power_w" ]
    | Some v ->
      (match Json.to_list v with
       | Some items -> Result.map_error ctx (collect objective_of_json items)
       | None -> Error (ctx "\"objectives\" must be an array"))
  in
  let* context =
    match Json.member "context" json with
    | None -> Ok []
    | Some v ->
      (match Json.to_obj v with
       | Some fields ->
         Result.map_error ctx
           (collect
              (fun (name, v) ->
                match Json.to_float v with
                | Some x -> Ok (name, x)
                | None -> Error (Printf.sprintf "context entry %S must be a number" name))
              fields)
       | None -> Error (ctx "\"context\" must be an object"))
  in
  let topology = Option.bind (Json.member "topology" json) Json.to_str in
  let* max_redesigns = Result.map_error ctx (field_int "max_redesigns" json) in
  let* timeout_s = Result.map_error ctx (field_float "timeout_s" json) in
  let* fault =
    match Option.bind (Json.member "fault" json) Json.to_str with
    | None -> Ok None
    | Some "raise" -> Ok (Some Raise)
    | Some "hang" -> Ok (Some Hang)
    | Some other -> Error (ctx (Printf.sprintf "unknown fault %S (raise or hang)" other))
  in
  Ok { job_id; seed; specs; objectives; context; topology; max_redesigns; timeout_s; fault }

let manifest_of_string text =
  let lines = String.split_on_char '\n' text in
  let* jobs =
    let rec walk lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then walk (lineno + 1) acc rest
        else begin
          let tagged msg = Printf.sprintf "manifest line %d: %s" lineno msg in
          match
            let* json = Json.parse trimmed in
            job_of_json json
          with
          | Ok job -> walk (lineno + 1) (job :: acc) rest
          | Error msg -> Error (tagged msg)
        end
    in
    walk 1 [] lines
  in
  let seen = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc j ->
        let* () = acc in
        if Hashtbl.mem seen j.job_id then
          Error (Printf.sprintf "manifest: duplicate job id %S" j.job_id)
        else begin
          Hashtbl.add seen j.job_id ();
          Ok ()
        end)
      (Ok ()) jobs
  in
  if jobs = [] then Error "manifest: no jobs" else Ok jobs

let load_manifest path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> manifest_of_string text
  | exception Sys_error msg -> Error msg

(* ---- journal records -------------------------------------------------- *)

let record_to_json r =
  let base =
    [ ("id", Json.Str r.rec_id);
      ("seed", Json.Num (float_of_int r.rec_seed));
      ("attempts", Json.Num (float_of_int r.attempts)) ]
  in
  match r.status with
  | Completed result -> Json.Obj (base @ [ ("status", Json.Str "completed"); ("result", result) ])
  | Failed f ->
    Json.Obj
      (base
      @ [ ("status", Json.Str "failed");
          ("error", Json.Str f.error);
          ("diagnostics", Json.Arr (List.map (fun d -> Json.Str d) f.diagnostics)) ])
  | Timed_out -> Json.Obj (base @ [ ("status", Json.Str "timed_out") ])
  | Cancelled -> Json.Obj (base @ [ ("status", Json.Str "cancelled") ])
  | Infeasible inf ->
    Json.Obj
      (base
      @ [ ("status", Json.Str "infeasible");
          ("spec", Json.Str inf.inf_spec);
          ("bound", Json.Str inf.inf_bound);
          ("certified_lo", Json.Num inf.inf_lo);
          ("certified_hi", Json.Num inf.inf_hi) ])

let record_of_json json =
  let* rec_id =
    match Option.bind (Json.member "id" json) Json.to_str with
    | Some id -> Ok id
    | None -> Error "record needs an \"id\""
  in
  let* rec_seed =
    match Option.bind (Json.member "seed" json) Json.to_int with
    | Some s -> Ok s
    | None -> Error "record needs a \"seed\""
  in
  let* attempts =
    match Option.bind (Json.member "attempts" json) Json.to_int with
    | Some a -> Ok a
    | None -> Error "record needs \"attempts\""
  in
  let* status =
    match Option.bind (Json.member "status" json) Json.to_str with
    | Some "completed" ->
      Ok (Completed (Option.value (Json.member "result" json) ~default:Json.Null))
    | Some "failed" ->
      let error =
        Option.value (Option.bind (Json.member "error" json) Json.to_str) ~default:"?"
      in
      let diagnostics =
        match Option.bind (Json.member "diagnostics" json) Json.to_list with
        | Some items -> List.filter_map Json.to_str items
        | None -> []
      in
      Ok (Failed { error; diagnostics })
    | Some "timed_out" -> Ok Timed_out
    | Some "cancelled" -> Ok Cancelled
    | Some "infeasible" ->
      let str name dflt =
        Option.value (Option.bind (Json.member name json) Json.to_str) ~default:dflt
      in
      let num name =
        Option.value (Option.bind (Json.member name json) Json.to_float) ~default:Float.nan
      in
      Ok
        (Infeasible
           { inf_spec = str "spec" "?";
             inf_bound = str "bound" "?";
             inf_lo = num "certified_lo";
             inf_hi = num "certified_hi" })
    | Some other -> Error (Printf.sprintf "unknown record status %S" other)
    | None -> Error "record needs a \"status\""
  in
  Ok { rec_id; rec_seed; attempts; status }

(* the records of the journal's longest valid prefix, plus that prefix's
   byte length; a trailing line without '\n' or that fails to parse is
   treated as interruption damage and excluded *)
let read_journal path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let text = In_channel.with_open_bin path In_channel.input_all in
    let len = String.length text in
    let rec walk start acc =
      if start >= len then (List.rev acc, start)
      else
        match String.index_from_opt text start '\n' with
        | None -> (List.rev acc, start) (* truncated trailing line *)
        | Some nl ->
          let line = String.sub text start (nl - start) in
          (match
             let* json = Json.parse line in
             record_of_json json
           with
          | Ok r -> walk (nl + 1) (r :: acc)
          | Error _ -> (List.rev acc, start))
    in
    walk 0 []
  end

(* ---- execution -------------------------------------------------------- *)

let find_template name =
  List.find_opt
    (fun (t : Mixsyn_circuit.Template.t) -> t.Mixsyn_circuit.Template.t_name = name)
    Mixsyn_circuit.Topology.all

(* only deterministic outcome fields reach the journal — wall-clock data
   would break the byte-identity contract, so stage timings stay out *)
let flow_result (o : Flow.outcome) =
  Json.Obj
    [ ("topology", Json.Str o.Flow.template.Mixsyn_circuit.Template.t_name);
      ("meets", Json.Bool o.Flow.meets_post_layout);
      ("redesigns", Json.Num (float_of_int o.Flow.redesigns));
      ("cost", Json.Num o.Flow.sizing.Mixsyn_synth.Sizing.cost);
      ("evaluations", Json.Num (float_of_int o.Flow.sizing.Mixsyn_synth.Sizing.evaluations));
      ("area_um2", Json.Num (o.Flow.layout.Mixsyn_layout.Cell_flow.area_m2 *. 1e12));
      ("routed", Json.Bool o.Flow.layout.Mixsyn_layout.Cell_flow.complete);
      ( "post_layout",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) o.Flow.post_layout) );
      ( "warnings",
        Json.Num
          (float_of_int
             (List.length (Mixsyn_check.Diagnostic.warnings o.Flow.diagnostics))) ) ]

let flow_executor ?(stage_cache = true) job ~seed =
  let candidates =
    match job.topology with
    | None -> Mixsyn_circuit.Topology.all
    | Some name ->
      (match find_template name with
       | Some t -> [ t ]
       | None -> failwith (Printf.sprintf "unknown topology %S" name))
  in
  let outcome =
    Flow.run ~seed ?max_redesigns:job.max_redesigns ~candidates ~stage_cache
      ~specs:job.specs ~objectives:job.objectives ~context:job.context ()
  in
  flow_result outcome

let describe_exn = function
  | Mixsyn_check.Lint.Check_failed diags ->
    { error = "check-failed";
      diagnostics =
        List.map
          (fun (d : Mixsyn_check.Diagnostic.t) ->
            Printf.sprintf "%s %s: %s" d.Mixsyn_check.Diagnostic.rule
              d.Mixsyn_check.Diagnostic.loc d.Mixsyn_check.Diagnostic.msg)
          (Mixsyn_check.Diagnostic.errors diags) }
  | Mixsyn_engine.Dc.No_convergence msg ->
    { error = "no-convergence: " ^ msg; diagnostics = [] }
  | Failure msg -> { error = "failure: " ^ msg; diagnostics = [] }
  | Invalid_argument msg -> { error = "invalid-argument: " ^ msg; diagnostics = [] }
  | exn -> { error = Printexc.to_string exn; diagnostics = [] }

(* deterministic seed perturbation between retries: a large odd stride so
   retry seeds never collide with neighbouring jobs' base seeds *)
let retry_stride = 1_000_003

let run_job ?timeout_s ?(retries = 0) ?(executor = flow_executor ~stage_cache:true)
    ?on_attempt job =
  if retries < 0 then
    invalid_arg (Printf.sprintf "Batch.run_job: retries %d negative" retries);
  let timeout_s = match job.timeout_s with Some t -> Some t | None -> timeout_s in
  let rec attempt k =
    let seed = job.seed + (retry_stride * k) in
    let token = Cancel.create ?timeout_s () in
    Option.iter (fun f -> f token) on_attempt;
    match
      Cancel.with_token token @@ fun () ->
      Mixsyn_util.Telemetry.with_span "batch.job" @@ fun () ->
      (match job.fault with
       | Some Raise -> failwith (Printf.sprintf "injected fault in job %s" job.job_id)
       | Some Hang ->
         (* spin at a guard point; only the timeout ends this, which is
            the point — it proves the timed_out path end to end *)
         while true do
           Cancel.guard ();
           Unix.sleepf 2e-3
         done
       | None -> ());
      executor job ~seed
    with
    | result ->
      Mixsyn_util.Telemetry.count "batch.completed";
      { rec_id = job.job_id; rec_seed = seed; attempts = k + 1; status = Completed result }
    | exception Cancel.Cancelled ->
      Mixsyn_util.Telemetry.count "batch.timed_out";
      { rec_id = job.job_id; rec_seed = seed; attempts = k + 1; status = Timed_out }
    | exception exn ->
      if k < retries then begin
        Mixsyn_util.Telemetry.count "batch.retries";
        attempt (k + 1)
      end
      else begin
        Mixsyn_util.Telemetry.count "batch.failed";
        { rec_id = job.job_id; rec_seed = seed; attempts = k + 1; status = Failed (describe_exn exn) }
      end
  in
  attempt 0

(* ---- static prefilter ------------------------------------------------- *)

(* a pure function of the job: the first spec (in manifest order) that the
   certified interval bounds prove unsatisfiable on every candidate the job
   is allowed to select, with the hull of the excluding enclosures.  No
   wall-clock, no randomness — prefiltered records are byte-identical at
   any job count, exactly like executed ones.  Fault-injected jobs are
   never prefiltered: they exist to exercise the executor's failure paths
   and must reach it. *)
let prefilter_job job =
  match job.fault with
  | Some _ -> None
  | None ->
    let candidates =
      match job.topology with
      | None -> Some Mixsyn_circuit.Topology.all
      | Some name ->
        (* unknown topology: let the executor fail with its own taxonomy *)
        (match find_template name with Some t -> Some [ t ] | None -> None)
    in
    (match candidates with
     | None | Some [] -> None
     | Some candidates ->
       let per_candidate =
         List.map
           (fun t ->
             Mixsyn_check.Bounds.infeasible_specs ~context:job.context job.specs t)
           candidates
       in
       List.find_map
         (fun (s : Spec.t) ->
           if
             List.for_all
               (fun inf -> List.exists (fun (s', _) -> s' == s) inf)
               per_candidate
           then begin
             let hull =
               List.fold_left
                 (fun acc inf ->
                   match List.find_opt (fun (s', _) -> s' == s) inf with
                   | Some (_, iv) -> I.hull acc iv
                   | None -> acc)
                 I.empty per_candidate
             in
             Some
               { rec_id = job.job_id;
                 rec_seed = job.seed;
                 attempts = 0;
                 status =
                   Infeasible
                     { inf_spec = s.Spec.s_name;
                       inf_bound = Mixsyn_check.Bounds.bound_to_string s.Spec.bound;
                       inf_lo = I.lo hull;
                       inf_hi = I.hi hull } }
           end
           else None)
         job.specs)

(* ---- the in-order journal writer -------------------------------------- *)

(* records finish in any order; they hit the disk in index order, each line
   flushed as soon as every earlier index has been written.  The journal is
   therefore always a clean prefix — the checkpoint/resume invariant.

   The writer buffers pre-serialized *lines*, not records: each worker
   renders its own record to canonical JSON off-lock (on its own domain,
   overlapped with other jobs), so the section under [w_lock] is pure
   ordering + I/O.  The bytes are identical either way — [Json.to_string]
   is canonical and the render is a pure function of the record. *)
type journal_writer = {
  oc : out_channel;
  w_lock : Mutex.t;
  mutable next : int;
  buffered : (int, string) Hashtbl.t;
}

let writer_push w i line =
  Mutex.lock w.w_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_lock)
    (fun () ->
      Hashtbl.replace w.buffered i line;
      while Hashtbl.mem w.buffered w.next do
        let line = Hashtbl.find w.buffered w.next in
        Hashtbl.remove w.buffered w.next;
        output_string w.oc line;
        output_char w.oc '\n';
        flush w.oc;
        w.next <- w.next + 1
      done)

let journal_push w i r = writer_push w i (Json.to_string (record_to_json r))

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

let journal_open path =
  let recorded, valid_len = read_journal path in
  if Sys.file_exists path then truncate_file path valid_len;
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  (recorded, { oc; w_lock = Mutex.create (); next = 0; buffered = Hashtbl.create 16 })

let journal_close w =
  Mutex.lock w.w_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_lock)
    (fun () -> close_out w.oc)

(* ---- the batch loop --------------------------------------------------- *)

(* snapshot of the pool's per-domain utilization counters
   ([pool.domain.<i>.busy_us]), as (slot, microseconds) pairs; the summary
   reports the delta over the run, in seconds *)
let domain_busy_us () =
  List.filter_map
    (fun (name, v) ->
      match String.split_on_char '.' name with
      | [ "pool"; "domain"; slot; "busy_us" ] ->
        Option.map (fun i -> (i, v)) (int_of_string_opt slot)
      | _ -> None)
    (Mixsyn_util.Telemetry.counters_alist ())

let domain_busy_delta before after =
  List.sort compare
    (List.filter_map
       (fun (slot, v1) ->
         let v0 = Option.value (List.assoc_opt slot before) ~default:0 in
         if v1 > v0 then Some (slot, float_of_int (v1 - v0) *. 1e-6) else None)
       after)

let run ?jobs ?timeout_s ?(retries = 0) ?(prefilter = true) ?(stage_cache = true)
    ?executor ~journal manifest =
  if retries < 0 then invalid_arg (Printf.sprintf "Batch.run: retries %d negative" retries);
  let executor =
    match executor with Some e -> e | None -> flow_executor ~stage_cache
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun j ->
      if Hashtbl.mem seen j.job_id then
        invalid_arg (Printf.sprintf "Batch.run: duplicate job id %S" j.job_id);
      Hashtbl.add seen j.job_id ())
    manifest;
  let t0 = Unix.gettimeofday () in
  (* resume: adopt the journal's valid prefix, cut interruption damage *)
  let recorded, w = journal_open journal in
  let done_tbl = Hashtbl.create 16 in
  (try
     List.iter
       (fun r ->
         if not (Hashtbl.mem seen r.rec_id) then
           invalid_arg
             (Printf.sprintf "Batch.run: journal %s records job %S, not in the manifest"
                journal r.rec_id);
         Hashtbl.replace done_tbl r.rec_id r)
       recorded
   with exn ->
     journal_close w;
     raise exn);
  let pending = Array.of_list (List.filter (fun j -> not (Hashtbl.mem done_tbl j.job_id)) manifest) in
  (* decide prefiltering up front, sequentially: interval certification is
     microseconds per job, and a fixed decision array keeps the journal a
     pure function of the manifest whatever the worker count *)
  let decisions =
    Array.map
      (fun job ->
        if not prefilter then None
        else
          match prefilter_job job with
          | Some r ->
            Mixsyn_util.Telemetry.count "batch.prefiltered";
            Some r
          | None -> None)
      pending
  in
  let run_jobs = Mixsyn_util.Pool.effective_jobs jobs (Array.length pending) in
  let cache_h0, cache_m0 = Flow.stage_cache_stats () in
  let busy0 = domain_busy_us () in
  let fresh =
    Fun.protect
      ~finally:(fun () -> journal_close w)
      (fun () ->
        if Array.length pending = 0 then [||]
        else
          (* whole jobs are the unit of stealing ([chunk:1]): jobs differ in
             cost by orders of magnitude, so claiming them one at a time is
             what keeps every domain busy until the manifest drains — while
             a worker's warm workspaces (Fmat pools, placer scratch) carry
             over across the consecutive jobs it claims *)
          Mixsyn_util.Pool.parallel_mapi ?jobs ~chunk:1
            (fun i job ->
              let r =
                match decisions.(i) with
                | Some r -> r
                | None ->
                  Mixsyn_util.Pool.sequential_scope (fun () ->
                      run_job ?timeout_s ~retries ~executor job)
              in
              (* serialize on the worker, off the writer lock *)
              journal_push w i r;
              r)
            pending)
  in
  let cache_h1, cache_m1 = Flow.stage_cache_stats () in
  let busy1 = domain_busy_us () in
  Array.iter (fun r -> Hashtbl.replace done_tbl r.rec_id r) fresh;
  let records = List.map (fun j -> Hashtbl.find done_tbl j.job_id) manifest in
  let count p = List.length (List.filter p records) in
  { total = List.length manifest;
    completed = count (fun r -> match r.status with Completed _ -> true | _ -> false);
    failed = count (fun r -> match r.status with Failed _ -> true | _ -> false);
    timed_out = count (fun r -> r.status = Timed_out);
    cancelled = count (fun r -> r.status = Cancelled);
    prefiltered = count (fun r -> match r.status with Infeasible _ -> true | _ -> false);
    skipped = List.length recorded;
    run_jobs;
    elapsed_s = Unix.gettimeofday () -. t0;
    cache_hits = cache_h1 - cache_h0;
    cache_misses = cache_m1 - cache_m0;
    domain_busy_s = domain_busy_delta busy0 busy1;
    records }

(* ---- reporting -------------------------------------------------------- *)

let throughput s =
  let fresh = s.total - s.skipped in
  if s.elapsed_s > 0.0 then float_of_int fresh /. s.elapsed_s else 0.0

let cache_hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int total

let summary_to_json s =
  Json.Obj
    [ ("total", Json.Num (float_of_int s.total));
      ("completed", Json.Num (float_of_int s.completed));
      ("failed", Json.Num (float_of_int s.failed));
      ("timed_out", Json.Num (float_of_int s.timed_out));
      ("cancelled", Json.Num (float_of_int s.cancelled));
      ("prefiltered_jobs", Json.Num (float_of_int s.prefiltered));
      ("skipped", Json.Num (float_of_int s.skipped));
      ("jobs", Json.Num (float_of_int s.run_jobs));
      ("elapsed_s", Json.Num s.elapsed_s);
      ("jobs_per_s", Json.Num (throughput s));
      ( "stage_cache",
        Json.Obj
          [ ("hits", Json.Num (float_of_int s.cache_hits));
            ("misses", Json.Num (float_of_int s.cache_misses));
            ("hit_rate", Json.Num (cache_hit_rate s)) ] );
      ( "domain_busy_s",
        Json.Obj
          (List.map
             (fun (slot, busy) -> (string_of_int slot, Json.Num busy))
             s.domain_busy_s) );
      ( "counters",
        Json.Obj
          (List.map
             (fun (n, v) -> (n, Json.Num (float_of_int v)))
             (Mixsyn_util.Telemetry.top_counters ~limit:12 ())) );
      ("records", Json.Arr (List.map record_to_json s.records)) ]

let pp_summary ppf s =
  Format.fprintf ppf
    "batch: %d job(s) — %d completed, %d failed, %d timed-out, %d infeasible%s%s@\n" s.total
    s.completed s.failed s.timed_out s.prefiltered
    (if s.cancelled > 0 then Printf.sprintf ", %d cancelled" s.cancelled else "")
    (if s.skipped > 0 then Printf.sprintf " (%d resumed from journal)" s.skipped else "");
  Format.fprintf ppf "  %d worker(s), %.1fs, %.2f jobs/s@\n" s.run_jobs s.elapsed_s
    (throughput s);
  if s.cache_hits + s.cache_misses > 0 then
    Format.fprintf ppf "  stage cache: %d hit(s), %d miss(es) (%.0f%% hit rate)@\n"
      s.cache_hits s.cache_misses (100.0 *. cache_hit_rate s);
  if s.domain_busy_s <> [] then begin
    Format.fprintf ppf "  domain utilization:";
    List.iter
      (fun (slot, busy) -> Format.fprintf ppf " %d:%.2fs" slot busy)
      s.domain_busy_s;
    Format.fprintf ppf "@\n"
  end;
  Format.fprintf ppf "  telemetry: %a@\n" (Mixsyn_util.Telemetry.pp_rollup ?limit:None) ();
  List.iter
    (fun r ->
      match r.status with
      | Completed _ -> ()
      | Failed f ->
        Format.fprintf ppf "  %-16s FAILED after %d attempt(s): %s@\n" r.rec_id r.attempts
          f.error;
        List.iter (fun d -> Format.fprintf ppf "      %s@\n" d) f.diagnostics
      | Timed_out ->
        Format.fprintf ppf "  %-16s TIMED OUT after %d attempt(s)@\n" r.rec_id r.attempts
      | Cancelled ->
        Format.fprintf ppf "  %-16s CANCELLED after %d attempt(s)@\n" r.rec_id r.attempts
      | Infeasible inf ->
        Format.fprintf ppf "  %-16s INFEASIBLE: %s %s, certified [%g, %g]@\n" r.rec_id
          inf.inf_spec inf.inf_bound inf.inf_lo inf.inf_hi)
    s.records
