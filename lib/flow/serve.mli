(** The persistent synthesis service: {!Batch} execution behind HTTP.

    [msyn serve] promotes the batch layer to a long-running daemon: one
    warm process — domain pool spawned, sizing stage cache populated —
    answering synthesis requests over a dependency-free HTTP/1.1 JSON
    protocol ({!Mixsyn_util.Http}).  Jobs are submitted one at a time in
    the manifest's per-line JSON format, land in a bounded work queue, and
    execute on dedicated worker domains through the exact same path as a
    batch run: {!Batch.prefilter_job} on admission, {!Batch.run_job} on a
    worker inside {!Mixsyn_util.Pool.sequential_scope}, every record
    appended through {!Batch.journal_open}/{!Batch.journal_push} in
    {e submission order}.

    That shared path is the service's contract: the journal a serve
    session writes is byte-identical to the journal [msyn batch] writes
    for the same jobs in the same order (absent explicit cancellations,
    which only the service can produce).  A killed or drained server
    therefore resumes like a batch does — reopen the journal, cut the torn
    trailing line, treat recorded jobs as already done — and a client that
    resubmits after a crash gets instant answers for everything that had
    been journalled.

    {2 Protocol}

    All bodies are canonical {!Mixsyn_util.Json}.
    - [POST /jobs] — submit one job (manifest line format).  [202] with
      the job's state on admission; [200] when the id is already known
      (idempotent resubmission); [400] malformed body; [429] queue full or
      rate-limited (with [Retry-After]); [503] draining.
    - [GET /jobs] — every known job id and state, in submission order.
    - [GET /jobs/]{e id} — one job's state ([404] unknown).
    - [GET /jobs/]{e id}[/result] — the finished job's journal record,
      exactly the bytes of its journal line ([409] while queued/running).
    - [POST /jobs/]{e id}[/cancel] — cancel: a queued job is journalled
      [Cancelled] without executing; a running job's {!Mixsyn_util.Cancel}
      token is cancelled and the job records [Cancelled] at its next guard
      point ([409] when already finished).
    - [POST /drain] — graceful shutdown: stop admitting, finish every
      queued and running job, flush the journal, exit.  [SIGTERM] and
      [SIGINT] trigger the same drain from the CLI.
    - [GET /healthz] — liveness; [GET /metrics] — queue depth, job and
      rejection counts, stage-cache hit rate, per-worker busy seconds and
      the full {!Mixsyn_util.Telemetry} rollup. *)

type config = {
  host : string;             (** bind address; default ["127.0.0.1"] *)
  port : int;                (** [0] binds an ephemeral port *)
  journal : string;          (** journal-as-checkpoint path *)
  workers : int;             (** worker domains executing jobs *)
  queue_capacity : int;      (** queued-job bound; past it submits get 429 *)
  rate_limit : float;        (** submissions/s/client token rate; 0 = off *)
  rate_burst : float;        (** token-bucket capacity *)
  timeout_s : float option;  (** default per-job timeout (job field wins) *)
  retries : int;             (** per-job retry budget, as [msyn batch] *)
  prefilter : bool;          (** static infeasibility screen on admission *)
  request_timeout_s : float; (** per-request read/handle deadline *)
}

val default_config : journal:string -> config
(** Loopback host, ephemeral port, {!Mixsyn_util.Pool.default_jobs}
    workers, queue capacity 64, rate limiting off (burst 8 when enabled),
    no timeout, no retries, prefilter on, 10 s request deadline. *)

type handle
(** A running server, handed to [on_ready] once the socket is bound. *)

val port : handle -> int
(** The port actually bound — the ephemeral port when [config.port = 0]. *)

val drain : handle -> unit
(** Request graceful drain.  Async-signal-safe (a single atomic store):
    this is exactly what the CLI's [SIGTERM]/[SIGINT] handlers call. *)

val draining : handle -> bool

(** Counters for the whole session, returned when {!run} drains. *)
type stats = {
  requests : int;            (** HTTP requests served *)
  accepted : int;            (** jobs admitted (incl. prefiltered) *)
  resumed : int;             (** records adopted from the journal prefix *)
  finished : int;            (** records journalled this session *)
  cancelled : int;           (** of which cancelled *)
  rejected_queue_full : int;
  rejected_rate_limited : int;
  rejected_draining : int;
}

val run :
  ?executor:(Batch.job -> seed:int -> Mixsyn_util.Json.t) ->
  ?on_ready:(handle -> unit) ->
  config ->
  stats
(** Bind, serve until drained, return the session's counters.  Blocks the
    calling domain (the CLI calls it last; tests run it in a spawned
    domain and use [on_ready] to learn the port).  [executor] defaults to
    {!Batch.flow_executor}[ ~stage_cache:true] — the same default as
    {!Batch.run}, which the byte-identity contract depends on.

    @raise Unix.Unix_error when the socket cannot be bound. *)
