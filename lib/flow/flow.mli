(** Top-to-bottom cell design flow — the Acacia-style prototype ([63]) the
    paper's conclusion points to: specification to verified layout through
    every stage of the hierarchical methodology of Section 2.1.

    Top-down: topology selection -> circuit sizing -> design verification.
    Bottom-up: layout generation -> extraction -> detailed verification.
    When the extracted circuit misses a specification, the flow "closes the
    loop" ([51]): it resynthesises with the observed layout parasitics
    folded into the load and retries (at most [max_redesigns] times). *)

type stage_log = {
  stage : string;
  detail : string;
  seconds : float;
}

type outcome = {
  template : Mixsyn_circuit.Template.t;
  sizing : Mixsyn_synth.Sizing.result;
  layout : Mixsyn_layout.Cell_flow.report;
  pre_layout : Mixsyn_synth.Spec.performance;
  post_layout : Mixsyn_synth.Spec.performance;
      (** performance of the extracted netlist *)
  meets_post_layout : bool;
  redesigns : int;
  diagnostics : Mixsyn_check.Diagnostic.t list;
      (** everything the static gates reported (warnings and infos; a flow
          that returns at all had zero errors) *)
  log : stage_log list;
}

val better_layout :
  Mixsyn_layout.Cell_flow.report ->
  Mixsyn_layout.Cell_flow.report ->
  Mixsyn_layout.Cell_flow.report
(** Preference order across placement retries: a completely routed layout
    beats any incomplete one; at equal completeness the smaller area wins. *)

val size_stage :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?strategy:Mixsyn_synth.Sizing.strategy ->
  ?schedule:Mixsyn_opt.Anneal.schedule ->
  ?stage_cache:bool ->
  ?seed:int ->
  context:(string * float) list ->
  specs:Mixsyn_synth.Spec.t list ->
  objectives:Mixsyn_synth.Spec.objective list ->
  Mixsyn_circuit.Template.t ->
  Mixsyn_synth.Sizing.result
(** The flow's sizing stage, exposed for batch executors and benchmarks:
    {!Mixsyn_synth.Sizing.size} behind the process-global cross-job stage
    cache.  The cache content-addresses the run with
    {!Mixsyn_synth.Sizing.cache_key}, so two jobs with identical sizing
    inputs share one computation; misses are single-flight (concurrent
    workers reaching the same key compute it once, the rest wait for the
    value).  [stage_cache:false] bypasses the cache entirely — results are
    bit-identical either way, which is what the journal identity tests
    compare.  Hit/miss totals appear in {!Mixsyn_util.Telemetry} under
    ["flow.stage_cache.hits"] / ["flow.stage_cache.misses"]. *)

val stage_cache_stats : unit -> int * int
(** Cumulative (hits, misses) of the cross-job sizing stage cache. *)

val stage_cache_hit_rate : unit -> float
(** Hits over total lookups of the stage cache; 0 before any lookup. *)

val clear_stage_cache : unit -> unit
(** Empty the stage cache and zero its local counters (benchmarks use this
    so a timed cold run is actually cold). *)

val run :
  ?tech:Mixsyn_circuit.Tech.t ->
  ?seed:int ->
  ?max_redesigns:int ->
  ?candidates:Mixsyn_circuit.Template.t list ->
  ?checks:bool ->
  ?contract:bool ->
  ?jobs:int ->
  ?stage_cache:bool ->
  specs:Mixsyn_synth.Spec.t list ->
  objectives:Mixsyn_synth.Spec.objective list ->
  context:(string * float) list ->
  unit ->
  outcome
(** Full flow for a cell-level specification set.

    Each sizing pass goes through {!size_stage}, so across a batch, jobs
    whose sizing inputs coincide reuse one result ([stage_cache:false]
    opts out; outcomes are bit-identical either way).

    With [jobs > 1] (default {!Mixsyn_util.Pool.default_jobs}) the layout
    placement retries evaluate concurrently on the shared domain pool; the
    outcome depends only on [seed], never on [jobs].

    Unless [checks] is [false], a static pre-flight gate runs first:
    {!Mixsyn_check.Bounds} certifies interval performance bounds over
    every candidate's parameter box, and a specification provably
    unsatisfiable on {e all} candidates raises
    {!Mixsyn_check.Lint.Check_failed} with a [feas.infeasible-spec]
    error before any sizing or layout work.  Hand-annotated feasibility
    ranges that claim performance outside the certified enclosure are
    reported as [feas.annotation-drift] warnings.  When the interval
    screen rejects every candidate, the flow continues with the full
    candidate list but emits a [feas.no-feasible-topology] warning (and
    bumps the [flow.no-feasible-topology] telemetry counter) instead of
    silently widening.  The finished design must then pass the three
    static gates of {!Mixsyn_check} (netlist ERC, layout DRC, constraint
    audit); error/warning totals land in {!Mixsyn_util.Telemetry}
    under [check.<stage>.*].

    Unless [contract] is [false], the selected template's parameter box
    is contracted by branch-and-prune ({!Mixsyn_check.Bounds.contract})
    before sizing: sub-boxes whose certified enclosure proves a spec
    violated are cut away.  The contraction is sound and deterministic;
    when nothing prunes, the template value is unchanged and the sizing
    trajectory is bit-identical to a run without contraction.

    Every stage boundary (and the annealer's move loop below it) polls
    {!Mixsyn_util.Cancel.guard}, so a run under an ambient cancellation
    token — as installed per job by {!Batch} — stops within milliseconds
    of its deadline by raising {!Mixsyn_util.Cancel.Cancelled}.
    @raise Failure when no candidate topology is feasible.
    @raise Mixsyn_check.Lint.Check_failed when a static gate reports an
    [Error] diagnostic. *)

val pp_outcome : Format.formatter -> outcome -> unit
